//! Fail-closed HTTP/1.1 wire parsing and response serialization.
//!
//! The parser sits between an untrusted socket and the gateway, so it
//! fails closed at every decision: hard byte limits before allocation,
//! exactly one request per connection (`Connection: close`), GET only,
//! no request bodies. Anything that is not a well-formed GET head maps
//! to a specific 4xx/5xx status — never a panic, never a best-effort
//! guess at what the client meant. Timeouts surface as their own error
//! so the engine can distinguish a slow client (408) from a malformed
//! one (400).

use crate::http::{HttpRequest, HttpResponse};
use std::io::{ErrorKind, Read, Write};

/// Byte and count limits the parser enforces before interpreting input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum bytes of the request head (request line + headers).
    pub max_head_bytes: usize,
    /// Maximum bytes of the request line (method + target + version).
    pub max_line_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 8 * 1024,
            max_line_bytes: 4 * 1024,
            max_headers: 64,
        }
    }
}

/// Why a request could not be served from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The head was not well-formed HTTP (400).
    Malformed(String),
    /// A syntactically valid method other than GET (405).
    MethodNotAllowed(String),
    /// A request body was signalled; the archive is read-only (413).
    BodyNotAllowed,
    /// A [`WireLimits`] bound was exceeded (431).
    TooLarge,
    /// An HTTP version this server does not speak (505).
    UnsupportedVersion(String),
    /// The client was too slow to send its head (408).
    TimedOut,
    /// The client disconnected before completing the head (no response).
    Disconnected,
    /// Another I/O failure on the socket (no response).
    Io(ErrorKind),
}

impl WireError {
    /// The HTTP status this error is answered with, or `None` when the
    /// peer is gone and no response can be delivered.
    pub fn status(&self) -> Option<u16> {
        match self {
            WireError::Malformed(_) => Some(400),
            WireError::MethodNotAllowed(_) => Some(405),
            WireError::BodyNotAllowed => Some(413),
            WireError::TooLarge => Some(431),
            WireError::UnsupportedVersion(_) => Some(505),
            WireError::TimedOut => Some(408),
            WireError::Disconnected | WireError::Io(_) => None,
        }
    }

    /// A short human-readable reason for the error body.
    pub fn reason(&self) -> String {
        match self {
            WireError::Malformed(why) => format!("malformed request: {why}"),
            WireError::MethodNotAllowed(m) => {
                format!("method {m:?} not allowed; the archive is read-only (GET)")
            }
            WireError::BodyNotAllowed => "request bodies are not accepted".to_owned(),
            WireError::TooLarge => "request head exceeds server limits".to_owned(),
            WireError::UnsupportedVersion(v) => format!("unsupported HTTP version {v:?}"),
            WireError::TimedOut => "timed out reading the request head".to_owned(),
            WireError::Disconnected => "client disconnected".to_owned(),
            WireError::Io(kind) => format!("socket error: {kind:?}"),
        }
    }
}

/// Reads bytes until the `\r\n\r\n` head terminator, honouring
/// `limits.max_head_bytes`. Returns only the head (terminator included).
pub fn read_head<R: Read>(reader: &mut R, limits: &WireLimits) -> Result<Vec<u8>, WireError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match reader.read(&mut chunk) {
            // EOF before the terminator: either nothing was sent or the
            // head was truncated — the peer is gone either way.
            Ok(0) => return Err(WireError::Disconnected),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(WireError::TimedOut);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == ErrorKind::ConnectionReset
                    || e.kind() == ErrorKind::ConnectionAborted
                    || e.kind() == ErrorKind::BrokenPipe =>
            {
                return Err(WireError::Disconnected);
            }
            Err(e) => return Err(WireError::Io(e.kind())),
        };
        head.extend_from_slice(&chunk[..n]);
        if let Some(end) = find_terminator(&head) {
            head.truncate(end);
            return Ok(head);
        }
        if head.len() > limits.max_head_bytes {
            return Err(WireError::TooLarge);
        }
    }
}

/// Index just past the first `\r\n\r\n`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses a complete request head into an [`HttpRequest`], enforcing the
/// GET-only, body-free contract.
pub fn parse_head(head: &[u8], limits: &WireLimits) -> Result<HttpRequest, WireError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| WireError::Malformed("head is not valid UTF-8".to_owned()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| WireError::Malformed("empty head".to_owned()))?;
    if request_line.len() > limits.max_line_bytes {
        return Err(WireError::TooLarge);
    }

    let mut tokens = request_line.split(' ');
    let (method, target, version) = match (tokens.next(), tokens.next(), tokens.next()) {
        (Some(m), Some(t), Some(v)) if tokens.next().is_none() && !m.is_empty() => (m, t, v),
        _ => {
            return Err(WireError::Malformed(format!(
                "request line is not 'METHOD target HTTP/x.y': {request_line:?}"
            )));
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(WireError::Malformed(format!("bad method token {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::UnsupportedVersion(version.to_owned()));
    }
    if method != "GET" {
        return Err(WireError::MethodNotAllowed(method.to_owned()));
    }
    if !target.starts_with('/') {
        return Err(WireError::Malformed(format!(
            "target must be an absolute path: {target:?}"
        )));
    }

    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_headers || line.len() > limits.max_line_bytes {
            return Err(WireError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(WireError::Malformed(format!("bad header name {name:?}")));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(WireError::BodyNotAllowed);
        }
        if name == "content-length" && value.parse::<u64>().map_or(true, |n| n > 0) {
            return Err(WireError::BodyNotAllowed);
        }
    }

    HttpRequest::get(target).map_err(|e| WireError::Malformed(e.to_string()))
}

/// The canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Serializes `response` (plus any `extra_headers`) as a complete
/// `Connection: close` HTTP/1.1 message.
pub fn encode_response(response: &HttpResponse, extra_headers: &[(&str, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + response.body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\n",
            response.status,
            status_reason(response.status)
        )
        .as_bytes(),
    );
    out.extend_from_slice(format!("content-type: {}\r\n", response.content_type).as_bytes());
    out.extend_from_slice(format!("content-length: {}\r\n", response.body.len()).as_bytes());
    out.extend_from_slice(b"connection: close\r\n");
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
    out
}

/// Writes `response` to the socket in one shot.
pub fn write_response(
    writer: &mut impl Write,
    response: &HttpResponse,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    writer.write_all(&encode_response(response, extra_headers))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(head: &str) -> Result<HttpRequest, WireError> {
        parse_head(head.as_bytes(), &WireLimits::default())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /query?table=sps HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/query");
        assert_eq!(req.param("table"), Some("sps"));
    }

    #[test]
    fn malformed_heads_fail_closed_as_400() {
        for head in [
            "GET /x\r\n\r\n",                     // missing version
            "GET  /x HTTP/1.1\r\n\r\n",           // empty token
            "GET /x HTTP/1.1 extra\r\n\r\n",      // four tokens
            "get /x HTTP/1.1\r\n\r\n",            // lowercase method token
            "GET x HTTP/1.1\r\n\r\n",             // relative target
            "GET /x HTTP/1.1\r\nnocolon\r\n\r\n", // header without colon
            "GET /x HTTP/1.1\r\n: v\r\n\r\n",     // empty header name
            "GET /q?novalue HTTP/1.1\r\n\r\n",    // bad query pair
            "\r\n\r\n",                           // empty request line
        ] {
            let err = parse(head).unwrap_err();
            assert_eq!(err.status(), Some(400), "{head:?} -> {err:?}");
        }
        let err = parse_head(b"GET /\xff\xfe HTTP/1.1\r\n\r\n", &WireLimits::default());
        assert_eq!(err.unwrap_err().status(), Some(400));
    }

    #[test]
    fn non_get_methods_are_405() {
        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let err = parse(&format!("{method} /x HTTP/1.1\r\n\r\n")).unwrap_err();
            assert_eq!(err, WireError::MethodNotAllowed(method.to_owned()));
            assert_eq!(err.status(), Some(405));
        }
    }

    #[test]
    fn old_or_future_versions_are_505() {
        let err = parse("GET /x HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), Some(505));
        assert!(parse("GET /x HTTP/1.0\r\n\r\n").is_ok());
    }

    #[test]
    fn bodies_are_rejected_413() {
        for head in [
            "GET /x HTTP/1.1\r\ncontent-length: 5\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nonsense\r\n\r\n",
            "GET /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert_eq!(parse(head).unwrap_err().status(), Some(413), "{head:?}");
        }
        // Explicit zero is fine: no body follows.
        assert!(parse("GET /x HTTP/1.1\r\ncontent-length: 0\r\n\r\n").is_ok());
    }

    #[test]
    fn oversized_heads_are_431() {
        let limits = WireLimits::default();
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(8192));
        assert_eq!(
            parse_head(long_target.as_bytes(), &limits).unwrap_err(),
            WireError::TooLarge
        );
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "h: v\r\n".repeat(limits.max_headers + 1)
        );
        assert_eq!(
            parse_head(many_headers.as_bytes(), &limits).unwrap_err(),
            WireError::TooLarge
        );
    }

    #[test]
    fn read_head_stops_at_terminator_and_enforces_limits() {
        let limits = WireLimits::default();
        let mut input: &[u8] = b"GET / HTTP/1.1\r\n\r\ntrailing-bytes";
        let head = read_head(&mut input, &limits).unwrap();
        assert_eq!(head, b"GET / HTTP/1.1\r\n\r\n");

        let mut oversized: &[u8] = &vec![b'a'; limits.max_head_bytes + 1024];
        assert_eq!(
            read_head(&mut oversized, &limits).unwrap_err(),
            WireError::TooLarge
        );

        let mut truncated: &[u8] = b"GET / HTT";
        assert_eq!(
            read_head(&mut truncated, &limits).unwrap_err(),
            WireError::Disconnected
        );
        let mut empty: &[u8] = b"";
        assert_eq!(
            read_head(&mut empty, &limits).unwrap_err(),
            WireError::Disconnected
        );
    }

    #[test]
    fn responses_encode_with_length_and_close() {
        let resp = HttpResponse::json("{\"ok\":true}".to_owned());
        let bytes = encode_response(&resp, &[("retry-after", "1".to_owned())]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn every_emitted_status_has_a_reason() {
        for status in [200, 400, 404, 405, 408, 413, 431, 500, 503, 504, 505] {
            assert_ne!(status_reason(status), "Response", "{status}");
        }
        assert_eq!(status_reason(418), "Response");
    }
}
