//! Real TCP serving for the archive gateway.
//!
//! Everything below `serving::server` turns the in-process
//! [`Gateway`](crate::Gateway) into a network service with an explicit
//! overload envelope:
//!
//! * [`wire`] — fail-closed HTTP/1.1 head parsing and response encoding,
//!   with hard byte limits.
//! * [`SharedArchive`] — snapshot/epoch access to the database, so
//!   queries never block collection.
//! * [`Server`] / [`ServerHandle`] — listener, bounded admission queue
//!   with 503 + `Retry-After` shedding, worker pool with per-request
//!   deadlines and panic isolation, and graceful drain on shutdown.
//! * [`ServerMetrics`] — the `spotlake_server_*` families.
//! * [`loadgen`] — the seeded closed/open-loop load and chaos generator
//!   that writes `BENCH_serving.json`.
//!
//! The threat model and shedding policy are documented in DESIGN.md
//! ("Serving under overload").

mod engine;
pub mod loadgen;
mod metrics;
mod shared;
pub mod wire;

pub use engine::{Server, ServerConfig, ServerHandle, ServerReport};
pub use loadgen::{ChaosProfile, LoadConfig, LoadMode, LoadReport};
pub use metrics::{PhaseStats, ServerMetrics, ServerTotals};
pub use shared::SharedArchive;
pub use wire::{WireError, WireLimits};
