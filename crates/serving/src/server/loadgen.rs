//! Seeded, deterministic load and chaos generator for the TCP server.
//!
//! The generator is the repo's serving scoreboard: it drives the *real*
//! listener with a realistic query mix (the archive's tables, instance
//! types, and regions from the paper's collection scope), measures
//! client-observed latency into an `obs` histogram, and renders
//! `BENCH_serving.json`. Two properties make its numbers trustworthy:
//!
//! * **Determinism** — the action plan (which request each client sends,
//!   and where chaos strikes) is a pure function of the seed, so two
//!   same-seed runs issue byte-identical request sequences.
//! * **Coordinated-omission correction** — in open-loop mode latency is
//!   measured from each request's *scheduled* start, not its send time,
//!   so a stalled server cannot hide queueing delay from the quantiles.
//!
//! Chaos modes exercise the overload envelope end to end: slow clients
//! (drip-fed heads), malformed and oversized requests, connection churn,
//! and mid-request disconnects.
//!
//! Since schema version 2 the report also *correlates* client and server
//! views: every response's echoed `x-spotlake-request-id` is recorded,
//! the slowest clean GETs are listed with their server-side request ids
//! (joinable against `/debug/requests`), and the rendered JSON folds in
//! the server's per-phase quantiles (`queue_wait`/`parse`/`handle`/
//! `write`) so one document answers "where did the latency go".
//!
//! Schema version 3 adds the SLO verdict block — per-objective alert
//! states, error budgets, burn rates, and exemplar request ids from the
//! server's final [`SloReport`] — and rounds every float field to fixed
//! precision so regenerated documents are byte-stable.

use super::metrics::{PhaseStats, ServerTotals};
use crate::json::Json;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spotlake_obs::Registry;
use spotlake_obs::SloReport;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const LATENCY_MICROS: &str = "spotlake_loadgen_latency_micros";
const REQUESTS_TOTAL: &str = "spotlake_loadgen_requests_total";

/// How clients pace their requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Each client sends its next request as soon as the previous one
    /// completes (throughput-seeking).
    Closed,
    /// Each client fires on a fixed schedule regardless of completions;
    /// latency is measured from the scheduled start.
    Open {
        /// Gap between one client's consecutive scheduled requests.
        interval: Duration,
    },
}

impl LoadMode {
    fn as_str(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        }
    }
}

/// How much chaos to mix into the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProfile {
    /// Clean requests only.
    None,
    /// ~10% of actions are hostile (2% per chaos kind).
    Light,
    /// ~30% of actions are hostile (6% per chaos kind).
    Heavy,
}

impl ChaosProfile {
    fn as_str(&self) -> &'static str {
        match self {
            ChaosProfile::None => "none",
            ChaosProfile::Light => "light",
            ChaosProfile::Heavy => "heavy",
        }
    }

    /// Per-kind probability in percent (five kinds total).
    fn per_kind_percent(&self) -> u32 {
        match self {
            ChaosProfile::None => 0,
            ChaosProfile::Light => 2,
            ChaosProfile::Heavy => 6,
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed for the deterministic action plan.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Actions per client.
    pub requests_per_client: usize,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Chaos mix.
    pub chaos: ChaosProfile,
    /// Connect / read / write timeout per request.
    pub io_timeout: Duration,
    /// Delay between drip-fed chunks of a slow-client head.
    pub slow_chunk_delay: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 7,
            clients: 4,
            requests_per_client: 50,
            mode: LoadMode::Closed,
            chaos: ChaosProfile::None,
            io_timeout: Duration::from_secs(5),
            slow_chunk_delay: Duration::from_millis(10),
        }
    }
}

/// One planned client action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// What to do on the wire.
    pub kind: ActionKind,
    /// Path-and-query for clean/slow requests.
    pub path: String,
}

/// The wire behaviour of an [`Action`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// A clean GET (latency is recorded for these only).
    Get,
    /// The same GET with the head drip-fed slowly.
    Slow,
    /// A syntactically broken request line (expect 400).
    Malformed,
    /// A request line far over the head limit (expect 431).
    Oversized,
    /// Connect and immediately hang up.
    Churn,
    /// Send half a head, then hang up.
    MidDisconnect,
}

impl ActionKind {
    fn as_str(self) -> &'static str {
        match self {
            ActionKind::Get => "get",
            ActionKind::Slow => "slow",
            ActionKind::Malformed => "malformed",
            ActionKind::Oversized => "oversized",
            ActionKind::Churn => "churn",
            ActionKind::MidDisconnect => "mid_disconnect",
        }
    }
}

/// Instance types in the generated query mix (SpotLake's collection
/// scope: general, compute, memory, and accelerator families).
const INSTANCE_TYPES: &[&str] = &[
    "m5.large",
    "m5.xlarge",
    "c5.large",
    "r5.xlarge",
    "t3.medium",
    "p3.2xlarge",
];

/// Regions in the generated query mix.
const REGIONS: &[&str] = &["us-east-1", "us-west-2", "eu-west-1", "ap-northeast-2"];

/// Tables in the generated query mix (weighted towards SPS, like the
/// paper's workload).
const TABLES: &[&str] = &["sps", "sps", "sps", "price", "advisor"];

/// Generates the per-client action plans — a pure function of the
/// config, so identical configs yield identical plans.
pub fn plan(config: &LoadConfig) -> Vec<Vec<Action>> {
    (0..config.clients)
        .map(|client| {
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            (0..config.requests_per_client)
                .map(|_| plan_action(&mut rng, config.chaos))
                .collect()
        })
        .collect()
}

fn plan_action(rng: &mut StdRng, chaos: ChaosProfile) -> Action {
    let per_kind = chaos.per_kind_percent();
    let roll = rng.gen_range(0u32..100);
    let kind = match roll {
        r if r < per_kind => ActionKind::Slow,
        r if r < per_kind * 2 => ActionKind::Malformed,
        r if r < per_kind * 3 => ActionKind::Oversized,
        r if r < per_kind * 4 => ActionKind::Churn,
        r if r < per_kind * 5 => ActionKind::MidDisconnect,
        _ => ActionKind::Get,
    };
    Action {
        kind,
        path: plan_path(rng),
    }
}

fn plan_path(rng: &mut StdRng) -> String {
    let pick = |rng: &mut StdRng, options: &[&str]| -> String {
        options
            .choose(rng)
            .copied()
            .unwrap_or("m5.large")
            .to_owned()
    };
    match rng.gen_range(0u32..100) {
        // Filtered range queries dominate, like real archive traffic.
        r if r < 45 => {
            let table = pick(rng, TABLES);
            let mut path = format!("/query?table={table}");
            if rng.gen_bool(0.7) {
                path.push_str(&format!("&instance_type={}", pick(rng, INSTANCE_TYPES)));
            }
            if rng.gen_bool(0.5) {
                path.push_str(&format!("&region={}", pick(rng, REGIONS)));
            }
            if rng.gen_bool(0.3) {
                let from = rng.gen_range(0u64..5_000);
                let span = rng.gen_range(100u64..2_000);
                path.push_str(&format!("&from={from}&to={}", from + span));
            }
            if rng.gen_bool(0.2) {
                path.push_str(&format!("&limit={}", rng.gen_range(1u64..200)));
            }
            path
        }
        r if r < 60 => format!("/latest?table={}", pick(rng, TABLES)),
        r if r < 70 => {
            let window = [60u64, 300, 600].choose(rng).copied().unwrap_or(60);
            format!(
                "/window?table={}&agg=mean&window={window}",
                pick(rng, TABLES)
            )
        }
        r if r < 80 => format!(
            "/at?table={}&timestamp={}",
            pick(rng, TABLES),
            rng.gen_range(0u64..10_000)
        ),
        r if r < 85 => "/stats".to_owned(),
        r if r < 90 => "/tables".to_owned(),
        r if r < 95 => "/health".to_owned(),
        _ => "/metrics".to_owned(),
    }
}

/// What one finished load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Client threads.
    pub clients: usize,
    /// Actions per client.
    pub requests_per_client: usize,
    /// Pacing discipline (`closed` / `open`).
    pub mode: String,
    /// Chaos profile name.
    pub chaos_profile: String,
    /// Total planned actions (deterministic per seed).
    pub planned: u64,
    /// Actions that received a complete HTTP response.
    pub completed: u64,
    /// Actions that failed with a socket error.
    pub io_errors: u64,
    /// Response-status histogram.
    pub statuses: BTreeMap<u16, u64>,
    /// Chaos actions sent, by kind (deterministic per seed).
    pub chaos_sent: BTreeMap<String, u64>,
    /// Responses carrying an `x-spotlake-request-id` header (every
    /// server-originated response should; a shortfall vs `completed`
    /// means a non-spotlake hop answered).
    pub responses_with_id: u64,
    /// The slowest clean GETs with their echoed server request ids,
    /// slowest first — joinable against the server's `/debug/requests`.
    pub slowest: Vec<SlowSample>,
    /// Client-observed latency quantiles over clean GETs, microseconds.
    pub p50_micros: f64,
    /// 90th percentile, microseconds.
    pub p90_micros: f64,
    /// 99th percentile, microseconds.
    pub p99_micros: f64,
    /// Completed responses per second of wall time.
    pub throughput_rps: f64,
    /// Run wall time in microseconds.
    pub duration_micros: u64,
}

/// One slow clean GET, correlated to the server by request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSample {
    /// Client-observed latency in whole microseconds.
    pub latency_micros: u64,
    /// The server-assigned id echoed in `x-spotlake-request-id`.
    pub request_id: u64,
    /// The path-and-query that was requested.
    pub path: String,
}

/// How many slow samples the report keeps.
const SLOWEST_KEPT: usize = 5;

impl LoadReport {
    /// Responses in the 5xx range (shed 503s included).
    pub fn fivexx(&self) -> u64 {
        self.statuses
            .iter()
            .filter(|(s, _)| (500..600).contains(*s))
            .map(|(_, n)| n)
            .sum()
    }

    /// Renders the `BENCH_serving.json` document (schema version 3),
    /// optionally folding in the server's own totals, per-phase latency
    /// summaries, and final SLO verdicts (when the caller owns the
    /// server too).
    ///
    /// All exported latency quantiles are rounded to whole microseconds
    /// and every remaining float (throughput, burns, budgets) to fixed
    /// decimal precision, so regenerated documents are byte-stable
    /// across identical runs.
    pub fn to_json(
        &self,
        server: Option<&ServerTotals>,
        phases: &[PhaseStats],
        slo: Option<&SloReport>,
    ) -> String {
        let statuses = Json::Object(
            self.statuses
                .iter()
                .map(|(status, n)| (status.to_string(), Json::from(*n)))
                .collect(),
        );
        let chaos = Json::Object(
            self.chaos_sent
                .iter()
                .map(|(kind, n)| (kind.clone(), Json::from(*n)))
                .collect(),
        );
        let server = match server {
            Some(totals) => Json::object([
                ("accepted", Json::from(totals.accepted)),
                ("served", Json::from(totals.served)),
                ("shed", Json::from(totals.shed)),
                ("deadline_exceeded", Json::from(totals.deadline_exceeded)),
                (
                    "slow_clients_closed",
                    Json::from(totals.slow_clients_closed),
                ),
                ("bad_requests", Json::from(totals.bad_requests)),
                ("worker_panics", Json::from(totals.worker_panics)),
            ]),
            None => Json::Null,
        };
        // Flat `{phase}_{stat}` keys so dashboards can address
        // `queue_wait_p99` etc. without nested lookups.
        let server_phases = Json::Object(
            phases
                .iter()
                .flat_map(|p| {
                    [
                        (format!("{}_count", p.phase), Json::from(p.count)),
                        (format!("{}_p50", p.phase), Json::from(p.p50_micros)),
                        (format!("{}_p90", p.phase), Json::from(p.p90_micros)),
                        (format!("{}_p99", p.phase), Json::from(p.p99_micros)),
                    ]
                })
                .collect(),
        );
        let slowest = Json::Array(
            self.slowest
                .iter()
                .map(|s| {
                    Json::object([
                        ("latency_micros", Json::from(s.latency_micros)),
                        ("request_id", Json::from(s.request_id)),
                        ("path", Json::from(s.path.as_str())),
                    ])
                })
                .collect(),
        );
        // Fixed-precision float rounding: 4 decimals for ratios/burns,
        // 3 for throughput — enough resolution, byte-stable diffs.
        let round4 = |v: f64| {
            Json::Number(if v.is_finite() {
                (v * 10_000.0).round() / 10_000.0
            } else {
                0.0
            })
        };
        let slo_json = match slo {
            Some(report) => {
                let objectives: Vec<Json> = report
                    .objectives
                    .iter()
                    .map(|o| {
                        let exemplars: Vec<Json> = o
                            .exemplar_request_ids
                            .iter()
                            .map(|id| Json::from(*id))
                            .collect();
                        let page_transitions = o
                            .transitions
                            .iter()
                            .filter(|t| t.to == spotlake_obs::AlertState::Page)
                            .count() as u64;
                        Json::object([
                            ("name", Json::from(o.name.as_str())),
                            ("signal", Json::string(o.signal.label())),
                            ("target", round4(o.target)),
                            ("state", Json::from(o.state.as_str())),
                            ("healthy", Json::from(o.healthy)),
                            ("good", round4(o.good)),
                            ("bad", round4(o.bad)),
                            ("budget_remaining", round4(o.budget_remaining)),
                            ("fast_burn", round4(o.fast_burn)),
                            ("slow_burn", round4(o.slow_burn)),
                            ("page_transitions", Json::from(page_transitions)),
                            ("exemplar_request_ids", Json::Array(exemplars)),
                        ])
                    })
                    .collect();
                Json::object([
                    ("healthy", Json::from(report.healthy)),
                    ("state", Json::from(report.worst_state().as_str())),
                    ("samples", Json::from(report.samples)),
                    ("objectives", Json::Array(objectives)),
                ])
            }
            None => Json::Null,
        };
        let round = |micros: f64| Json::from(micros.round().max(0.0) as u64);
        Json::object([
            ("bench", Json::from("serving")),
            ("version", Json::from(3u64)),
            ("seed", Json::from(self.seed)),
            ("mode", Json::string(&self.mode)),
            ("chaos", Json::string(&self.chaos_profile)),
            ("clients", Json::from(self.clients as u64)),
            (
                "requests_per_client",
                Json::from(self.requests_per_client as u64),
            ),
            ("planned", Json::from(self.planned)),
            ("completed", Json::from(self.completed)),
            ("io_errors", Json::from(self.io_errors)),
            ("statuses", statuses),
            ("chaos_sent", chaos),
            (
                "latency_micros",
                Json::object([
                    ("p50", round(self.p50_micros)),
                    ("p90", round(self.p90_micros)),
                    ("p99", round(self.p99_micros)),
                ]),
            ),
            ("server_phases", server_phases),
            (
                "request_correlation",
                Json::object([
                    ("responses_with_id", Json::from(self.responses_with_id)),
                    ("slowest", slowest),
                ]),
            ),
            (
                "throughput_rps",
                Json::Number(if self.throughput_rps.is_finite() {
                    (self.throughput_rps * 1_000.0).round() / 1_000.0
                } else {
                    0.0
                }),
            ),
            ("duration_micros", Json::from(self.duration_micros)),
            ("server", server),
            ("slo", slo_json),
        ])
        .render()
    }
}

#[derive(Debug, Default)]
struct ClientTally {
    completed: u64,
    io_errors: u64,
    statuses: BTreeMap<u16, u64>,
    chaos_sent: BTreeMap<String, u64>,
    responses_with_id: u64,
    /// Clean-GET samples with an echoed request id, for the slowest-N cut.
    samples: Vec<SlowSample>,
}

/// Runs the configured load against `addr` and summarizes what came
/// back. Blocks until every client finishes its plan.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let plans = plan(config);
    let planned: u64 = plans.iter().map(|p| p.len() as u64).sum();
    let registry = Registry::new();
    let started = Instant::now();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|actions| {
                let registry = &registry;
                scope.spawn(move || run_client(addr, config, actions, registry))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let duration = started.elapsed();
    let mut statuses = BTreeMap::new();
    let mut chaos_sent = BTreeMap::new();
    let mut completed = 0u64;
    let mut io_errors = 0u64;
    let mut responses_with_id = 0u64;
    let mut slowest: Vec<SlowSample> = Vec::new();
    for tally in tallies {
        completed += tally.completed;
        io_errors += tally.io_errors;
        responses_with_id += tally.responses_with_id;
        slowest.extend(tally.samples);
        for (status, n) in tally.statuses {
            *statuses.entry(status).or_insert(0) += n;
        }
        for (kind, n) in tally.chaos_sent {
            *chaos_sent.entry(kind).or_insert(0) += n;
        }
    }
    // Slowest first; ties break on request id so same-seed runs against a
    // deterministic server render the same list.
    slowest.sort_by(|a, b| {
        b.latency_micros
            .cmp(&a.latency_micros)
            .then(a.request_id.cmp(&b.request_id))
    });
    slowest.truncate(SLOWEST_KEPT);

    let quantile = |q: f64| {
        registry
            .histogram_quantile(LATENCY_MICROS, &[], q)
            .unwrap_or(0.0)
    };
    LoadReport {
        seed: config.seed,
        clients: config.clients,
        requests_per_client: config.requests_per_client,
        mode: config.mode.as_str().to_owned(),
        chaos_profile: config.chaos.as_str().to_owned(),
        planned,
        completed,
        io_errors,
        statuses,
        chaos_sent,
        responses_with_id,
        slowest,
        p50_micros: quantile(0.50),
        p90_micros: quantile(0.90),
        p99_micros: quantile(0.99),
        throughput_rps: if duration.as_secs_f64() > 0.0 {
            completed as f64 / duration.as_secs_f64()
        } else {
            0.0
        },
        duration_micros: duration.as_micros() as u64,
    }
}

fn run_client(
    addr: SocketAddr,
    config: &LoadConfig,
    actions: &[Action],
    registry: &Registry,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let base = Instant::now();
    for (i, action) in actions.iter().enumerate() {
        let scheduled = match config.mode {
            LoadMode::Closed => Instant::now(),
            LoadMode::Open { interval } => {
                let at = base + interval * (i as u32);
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
                at
            }
        };
        let outcome = execute(addr, config, action);
        let latency = scheduled.elapsed();
        record(registry, action, &outcome, latency, &mut tally);
    }
    tally
}

enum Outcome {
    /// A complete response came back, with the server's echoed request
    /// id when the `x-spotlake-request-id` header was present.
    Status {
        status: u16,
        request_id: Option<u64>,
    },
    /// The socket failed (connect, write, or read).
    IoError,
    /// The action hung up on purpose; no response expected.
    Dropped,
}

impl Outcome {
    fn as_str(&self) -> &'static str {
        match self {
            Outcome::Status { .. } => "response",
            Outcome::IoError => "io_error",
            Outcome::Dropped => "dropped",
        }
    }
}

fn record(
    registry: &Registry,
    action: &Action,
    outcome: &Outcome,
    latency: Duration,
    tally: &mut ClientTally,
) {
    registry.counter_add(
        REQUESTS_TOTAL,
        "Load-generator actions executed, by kind and outcome",
        &[
            ("kind", action.kind.as_str()),
            ("outcome", outcome.as_str()),
        ],
        1,
    );
    if action.kind != ActionKind::Get {
        *tally
            .chaos_sent
            .entry(action.kind.as_str().to_owned())
            .or_insert(0) += 1;
    }
    match outcome {
        Outcome::Status { status, request_id } => {
            tally.completed += 1;
            *tally.statuses.entry(*status).or_insert(0) += 1;
            if request_id.is_some() {
                tally.responses_with_id += 1;
            }
            if action.kind == ActionKind::Get {
                let micros = latency.as_secs_f64() * 1_000_000.0;
                registry.histogram_record(
                    LATENCY_MICROS,
                    "Client-observed request latency in microseconds",
                    &[],
                    micros,
                );
                if let Some(id) = request_id {
                    tally.samples.push(SlowSample {
                        latency_micros: micros.round().max(0.0) as u64,
                        request_id: *id,
                        path: action.path.clone(),
                    });
                }
            }
        }
        Outcome::IoError => tally.io_errors += 1,
        Outcome::Dropped => {}
    }
}

fn execute(addr: SocketAddr, config: &LoadConfig, action: &Action) -> Outcome {
    match action.kind {
        ActionKind::Get => {
            let head = format!(
                "GET {} HTTP/1.1\r\nhost: spotlake\r\nconnection: close\r\n\r\n",
                action.path
            );
            match exchange(addr, head.as_bytes(), config.io_timeout, None) {
                Ok((status, request_id)) => Outcome::Status { status, request_id },
                Err(_) => Outcome::IoError,
            }
        }
        ActionKind::Slow => {
            let head = format!(
                "GET {} HTTP/1.1\r\nhost: spotlake\r\nconnection: close\r\n\r\n",
                action.path
            );
            send_raw_chunked(addr, head.as_bytes(), config, 4)
        }
        ActionKind::Malformed => send_raw(
            addr,
            b"GET badpath-without-a-slash\r\n\r\n",
            config.io_timeout,
        ),
        ActionKind::Oversized => {
            let head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(16 * 1024));
            send_raw(addr, head.as_bytes(), config.io_timeout)
        }
        ActionKind::Churn => match TcpStream::connect_timeout(&addr, config.io_timeout) {
            Ok(conn) => {
                drop(conn);
                Outcome::Dropped
            }
            Err(_) => Outcome::IoError,
        },
        ActionKind::MidDisconnect => match TcpStream::connect_timeout(&addr, config.io_timeout) {
            Ok(mut conn) => {
                let _ = conn.write_all(b"GET /hea");
                drop(conn);
                Outcome::Dropped
            }
            Err(_) => Outcome::IoError,
        },
    }
}

/// Sends `payload` and reads a full response.
fn send_raw(addr: SocketAddr, payload: &[u8], timeout: Duration) -> Outcome {
    match exchange(addr, payload, timeout, None) {
        Ok((status, request_id)) => Outcome::Status { status, request_id },
        Err(_) => Outcome::IoError,
    }
}

/// Sends `payload` drip-fed in `chunks` pieces with the configured delay
/// between them, then reads a full response.
fn send_raw_chunked(
    addr: SocketAddr,
    payload: &[u8],
    config: &LoadConfig,
    chunks: usize,
) -> Outcome {
    match exchange(
        addr,
        payload,
        config.io_timeout,
        Some((chunks, config.slow_chunk_delay)),
    ) {
        Ok((status, request_id)) => Outcome::Status { status, request_id },
        Err(_) => Outcome::IoError,
    }
}

fn exchange(
    addr: SocketAddr,
    payload: &[u8],
    timeout: Duration,
    drip: Option<(usize, Duration)>,
) -> io::Result<(u16, Option<u64>)> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    match drip {
        None => conn.write_all(payload)?,
        Some((chunks, delay)) => {
            let size = payload.len().div_ceil(chunks.max(1));
            for chunk in payload.chunks(size.max(1)) {
                conn.write_all(chunk)?;
                conn.flush()?;
                std::thread::sleep(delay);
            }
        }
    }
    let mut response = Vec::new();
    // A shed or error response can be followed by an RST (the server
    // closes while our request bytes are still in flight); whatever was
    // buffered before the reset still counts as the answer.
    let read_result = conn.read_to_end(&mut response);
    match parse_status(&response) {
        Some(status) => Ok((status, parse_request_id(&response))),
        None => {
            read_result?;
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unparseable response",
            ))
        }
    }
}

/// Issues one clean GET and returns `(status, body)`. Shared by the
/// loadgen, the CLI, and the integration tests.
pub fn fetch(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let (status, body, _) = fetch_with_id(addr, path, timeout)?;
    Ok((status, body))
}

/// Issues one clean GET and returns `(status, body, request_id)`, where
/// `request_id` is the server's echoed `x-spotlake-request-id` (None if
/// the header was missing or unparseable).
pub fn fetch_with_id(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
) -> io::Result<(u16, String, Option<u64>)> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nhost: spotlake\r\nconnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = Vec::new();
    conn.read_to_end(&mut response)?;
    let status = parse_status(&response)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unparseable response"))?;
    let body = match find_body(&response) {
        Some(at) => String::from_utf8_lossy(&response[at..]).into_owned(),
        None => String::new(),
    };
    Ok((status, body, parse_request_id(&response)))
}

/// Pulls the echoed `x-spotlake-request-id` out of a raw response head.
fn parse_request_id(response: &[u8]) -> Option<u64> {
    let head_end = find_body(response).unwrap_or(response.len());
    let head = std::str::from_utf8(response.get(..head_end)?).ok()?;
    for line in head.split("\r\n").skip(1) {
        let (name, value) = match line.split_once(':') {
            Some(pair) => pair,
            None => continue,
        };
        if name.trim().eq_ignore_ascii_case("x-spotlake-request-id") {
            return value.trim().parse().ok();
        }
    }
    None
}

fn parse_status(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response.get(..response.len().min(64))?).ok()?;
    let mut parts = text.split(' ');
    if !parts.next()?.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

fn find_body(response: &[u8]) -> Option<usize> {
    response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let config = LoadConfig {
            chaos: ChaosProfile::Heavy,
            clients: 3,
            requests_per_client: 40,
            ..LoadConfig::default()
        };
        assert_eq!(plan(&config), plan(&config));
        let other = LoadConfig {
            seed: config.seed + 1,
            ..config.clone()
        };
        assert_ne!(plan(&config), plan(&other));
    }

    #[test]
    fn clients_get_distinct_streams() {
        let config = LoadConfig {
            clients: 2,
            requests_per_client: 20,
            ..LoadConfig::default()
        };
        let plans = plan(&config);
        assert_eq!(plans.len(), 2);
        assert_ne!(plans[0], plans[1]);
    }

    #[test]
    fn chaos_free_plans_are_all_clean_gets() {
        let config = LoadConfig {
            clients: 4,
            requests_per_client: 50,
            chaos: ChaosProfile::None,
            ..LoadConfig::default()
        };
        for action in plan(&config).iter().flatten() {
            assert_eq!(action.kind, ActionKind::Get);
            assert!(action.path.starts_with('/'), "{}", action.path);
        }
    }

    #[test]
    fn heavy_chaos_plans_include_every_kind() {
        let config = LoadConfig {
            clients: 8,
            requests_per_client: 200,
            chaos: ChaosProfile::Heavy,
            ..LoadConfig::default()
        };
        let kinds: std::collections::BTreeSet<&'static str> = plan(&config)
            .iter()
            .flatten()
            .map(|a| a.kind.as_str())
            .collect();
        for kind in [
            "get",
            "slow",
            "malformed",
            "oversized",
            "churn",
            "mid_disconnect",
        ] {
            assert!(kinds.contains(kind), "no {kind} action in 1600 draws");
        }
    }

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n\r\n"), Some(200));
        assert_eq!(
            parse_status(b"HTTP/1.1 503 Service Unavailable\r\n"),
            Some(503)
        );
        assert_eq!(parse_status(b"garbage"), None);
        assert_eq!(parse_status(b""), None);
        assert_eq!(find_body(b"HTTP/1.1 200 OK\r\n\r\nbody"), Some(19));
    }

    #[test]
    fn report_json_has_the_scoreboard_keys() {
        let report = LoadReport {
            seed: 7,
            clients: 2,
            requests_per_client: 10,
            mode: "closed".into(),
            chaos_profile: "none".into(),
            planned: 20,
            completed: 20,
            io_errors: 0,
            statuses: [(200u16, 19u64), (503, 1)].into_iter().collect(),
            chaos_sent: BTreeMap::new(),
            responses_with_id: 20,
            slowest: vec![SlowSample {
                latency_micros: 901,
                request_id: 17,
                path: "/query?table=sps".into(),
            }],
            p50_micros: 120.4,
            p90_micros: 400.5,
            p99_micros: 900.9,
            throughput_rps: 1234.5,
            duration_micros: 16_000,
        };
        let phases = [PhaseStats {
            phase: "queue_wait",
            count: 20,
            p50_micros: 3,
            p90_micros: 9,
            p99_micros: 14,
        }];
        let json = report.to_json(Some(&ServerTotals::default()), &phases, None);
        for key in [
            "\"bench\":\"serving\"",
            "\"version\":3",
            "\"seed\":7",
            // Quantiles export as whole microseconds (rounded).
            "\"p50\":120",
            "\"p90\":401",
            "\"p99\":901",
            "\"throughput_rps\":1234.5",
            "\"statuses\":{\"200\":19,\"503\":1}",
            "\"worker_panics\":0",
            "\"queue_wait_count\":20",
            "\"queue_wait_p99\":14",
            "\"responses_with_id\":20",
            "\"request_id\":17",
            "\"slo\":null",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert_eq!(report.fivexx(), 1);
        assert!(report.to_json(None, &[], None).contains("\"server\":null"));
        assert!(report
            .to_json(None, &[], None)
            .contains("\"server_phases\":{}"));

        // Float fields are rounded to fixed precision so regenerated
        // documents diff byte-stably.
        let noisy = LoadReport {
            throughput_rps: 1_234.567_891_23,
            ..report.clone()
        };
        let json = noisy.to_json(None, &[], None);
        assert!(json.contains("\"throughput_rps\":1234.568"), "{json}");

        // With an SLO report attached, the verdict block is rendered.
        let tracker = spotlake_obs::SloTracker::new(spotlake_obs::SloSet::serving_defaults());
        let json = noisy.to_json(None, &[], Some(&tracker.report()));
        for key in [
            "\"slo\":{\"healthy\":true",
            "\"state\":\"ok\"",
            "\"name\":\"availability\"",
            "\"signal\":\"phase_latency:handle\"",
            "\"budget_remaining\":1",
            "\"page_transitions\":0",
            "\"exemplar_request_ids\":[]",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn request_id_header_parsing() {
        let with =
            b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\nx-spotlake-request-id: 42\r\n\r\nok";
        assert_eq!(parse_request_id(with), Some(42));
        let cased = b"HTTP/1.1 503 Unavailable\r\nX-Spotlake-Request-Id: 7\r\n\r\n";
        assert_eq!(parse_request_id(cased), Some(7));
        let without = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\r\nok";
        assert_eq!(parse_request_id(without), None);
        // An id in the body must not count.
        let body_only = b"HTTP/1.1 200 OK\r\n\r\nx-spotlake-request-id: 9";
        assert_eq!(parse_request_id(body_only), None);
    }
}
