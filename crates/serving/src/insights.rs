//! Analysis-backed archive endpoints.
//!
//! Section 5.3's dataset-correlation analysis as a *service feature*: a
//! SpotLake user can ask the archive directly how well two spot datasets
//! agree for a given pool, instead of exporting and computing offline.
//!
//! * `GET /correlate?instance_type=T&region=R[&az=Z]` — Pearson and
//!   Spearman coefficients of all three dataset pairs for one pool, plus
//!   the |SPS − IF| difference histogram.
//! * `GET /stats` — archive-wide inventory: tables, series, points, plus
//!   latency-proxy quantiles and the slow-query flight recorder.
//! * `GET /quality` — archive data-quality report: per-dataset coverage,
//!   staleness, and gap counts from the collector's quality monitor.

use crate::gateway::Gateway;
use crate::http::{HttpRequest, HttpResponse};
use crate::json::Json;
use crate::ops::OpsContext;
use spotlake_analysis::{align_step, pearson, spearman, Histogram};
use spotlake_collector::{DatasetHealth, RoundHealth};
use spotlake_obs::{DatasetQuality, HistogramSummary};
use spotlake_timestream::{Database, Query, Row, ShardHealthRow};

/// Histogram families whose quantiles `/stats` surfaces. A fixed list
/// keeps the section's key set stable across runs regardless of which
/// registries happen to be lent on a given request.
const QUANTILE_FAMILIES: [&str; 4] = [
    "spotlake_http_response_bytes",
    "spotlake_query_cost",
    "spotlake_query_rows_decoded",
    "spotlake_store_query_rows",
];

/// How many flight-recorder entries `/stats` lists (the full retained set
/// stays available at `/debug/queries`).
const STATS_SLOW_QUERIES: usize = 5;

pub(crate) fn stats(db: &Database, gateway: &Gateway, ops: &OpsContext) -> HttpResponse {
    let tables: Vec<Json> = db
        .table_names()
        .into_iter()
        .filter_map(|name| {
            // The name came from the listing, but fail closed anyway: a
            // racing drop must degrade the listing, not panic a request.
            let table = db.table(name).ok()?;
            Some(Json::object([
                ("name", Json::from(name)),
                ("series", Json::from(table.series_count() as u64)),
                ("points", Json::from(table.point_count() as u64)),
            ]))
        })
        .collect();
    let mut fields = vec![
        ("tables", Json::Array(tables)),
        ("total_points", Json::from(db.point_count() as u64)),
    ];
    if let Some(c) = ops.collect {
        fields.push((
            "collection",
            Json::object([
                ("rounds", Json::from(c.rounds as u64)),
                ("records_written", Json::from(c.records_written as u64)),
                ("queries_issued", Json::from(c.queries_issued as u64)),
                ("retries", Json::from(c.retries as u64)),
                ("queries_failed", Json::from(c.queries_failed as u64)),
                ("degraded_rounds", Json::from(c.degraded_rounds as u64)),
                ("dead_lettered", Json::from(c.dead_lettered as u64)),
            ]),
        ));
    }
    if let Some(h) = ops.last_round {
        fields.push(("last_round", round_to_json(h)));
    }
    if let Some(r) = ops.recovery {
        fields.push((
            "recovery",
            Json::object([
                ("checkpoint_loaded", Json::from(r.checkpoint_loaded)),
                ("checkpoint_points", Json::from(r.checkpoint_points as u64)),
                ("frames_replayed", Json::from(r.frames_replayed)),
                ("records_replayed", Json::from(r.records_replayed)),
                ("rounds_recovered", Json::from(r.rounds_recovered)),
                ("bytes_truncated", Json::from(r.bytes_truncated)),
                ("point_count", Json::from(r.point_count as u64)),
            ]),
        ));
    }
    if let Some(s) = ops.shards {
        let rows: Vec<Json> = s.shards.iter().map(shard_row_json).collect();
        fields.push((
            "shards",
            Json::object([
                ("total", Json::from(s.total() as u64)),
                ("healthy", Json::from(s.healthy() as u64)),
                ("quarantined", Json::from(s.quarantined().count() as u64)),
                ("rows", Json::Array(rows)),
            ]),
        ));
    }
    fields.push(("quantiles", quantiles_json(db, gateway, ops)));
    fields.push(("slow_queries", slow_queries_json(gateway)));
    HttpResponse::json(Json::object(fields).render())
}

fn shard_row_json(r: &ShardHealthRow) -> Json {
    Json::object([
        ("dataset", Json::from(r.dataset.as_str())),
        ("region", Json::from(r.region.as_str())),
        ("state", Json::from(r.state.as_str())),
        ("detail", Json::from(r.detail.as_str())),
        ("points", Json::from(r.points as u64)),
        ("last_tick", r.last_tick.map_or(Json::Null, Json::from)),
        ("commits", Json::from(r.commits)),
        ("commit_failures", Json::from(r.commit_failures)),
    ])
}

/// Renders p50/p90/p99 summaries for the fixed [`QUANTILE_FAMILIES`],
/// looked up across every registry visible to this request. Quantiles are
/// derived views — they belong here, not in the Prometheus exposition,
/// which stays raw buckets only.
fn quantiles_json(db: &Database, gateway: &Gateway, ops: &OpsContext) -> Json {
    let mut registries = vec![db.metrics(), gateway.http_metrics()];
    registries.extend(ops.registries.iter().copied());
    let families = QUANTILE_FAMILIES.into_iter().map(|family| {
        let series: Vec<Json> = registries
            .iter()
            .flat_map(|r| r.histogram_summaries(family))
            .map(summary_json)
            .collect();
        (family, Json::Array(series))
    });
    Json::object(families)
}

fn summary_json(s: HistogramSummary) -> Json {
    let labels = Json::Object(
        s.labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::string(v)))
            .collect(),
    );
    Json::object([
        ("labels", labels),
        ("count", Json::from(s.count)),
        ("sum", Json::from(s.sum)),
        ("p50", Json::from(s.p50)),
        ("p90", Json::from(s.p90)),
        ("p99", Json::from(s.p99)),
    ])
}

/// The most expensive retained queries, for the `/stats` overview.
fn slow_queries_json(gateway: &Gateway) -> Json {
    let entries: Vec<Json> = gateway
        .flight()
        .snapshot()
        .iter()
        .take(STATS_SLOW_QUERIES)
        .map(|e| {
            Json::object([
                ("trace_id", Json::from(e.trace_id)),
                ("request_id", Json::from(e.request_id)),
                ("op", Json::from(e.op.as_str())),
                ("query", Json::from(e.query.as_str())),
                ("cost", Json::from(e.cost)),
                ("rows", Json::from(e.rows)),
            ])
        })
        .collect();
    Json::Array(entries)
}

/// `GET /quality`: the archive data-quality report lent through
/// [`OpsContext::quality`]. A bare archive (no collector attached) answers
/// with the same shape, empty — so dashboards need no special case.
pub(crate) fn quality(ops: &OpsContext) -> HttpResponse {
    let datasets: Vec<Json> = ops
        .quality
        .map(|report| report.datasets.iter().map(dataset_quality_json).collect())
        .unwrap_or_default();
    let tick = ops.quality.map_or(0, |r| r.tick);
    let mut fields = vec![
        ("tick", Json::from(tick)),
        ("datasets", Json::Array(datasets)),
    ];
    if let Some(s) = ops.shards {
        // Sharded archives list their impaired fault domains here, so a
        // dashboard reading coverage also sees which dataset×region
        // slices the coverage currently excludes.
        let impaired: Vec<Json> = s
            .impaired()
            .map(|r| Json::string(format!("{}/{}", r.dataset, r.region)))
            .collect();
        fields.push(("quarantined_shards", Json::Array(impaired)));
    }
    HttpResponse::json(Json::object(fields).render())
}

fn dataset_quality_json(d: &DatasetQuality) -> Json {
    let worst: Vec<Json> = d
        .worst
        .iter()
        .map(|k| {
            Json::object([
                ("key", Json::from(k.key.as_str())),
                ("observed", Json::from(k.observed)),
                ("staleness_ticks", Json::from(k.staleness)),
                ("gaps", Json::from(k.gaps)),
                ("missed_rounds", Json::from(k.missed)),
            ])
        })
        .collect();
    Json::object([
        ("dataset", Json::from(d.dataset.as_str())),
        ("keys_tracked", Json::from(d.keys_tracked)),
        ("keys_stale", Json::from(d.keys_stale)),
        ("gaps_total", Json::from(d.gaps)),
        ("missed_rounds_total", Json::from(d.missed_rounds)),
        ("min_coverage", Json::from(d.min_coverage)),
        ("max_staleness_ticks", Json::from(d.max_staleness)),
        ("worst", Json::Array(worst)),
    ])
}

fn round_to_json(h: &RoundHealth) -> Json {
    let dataset = |d: &DatasetHealth| {
        Json::object([
            ("status", Json::from(d.status.as_str())),
            ("records", Json::from(d.records as u64)),
            ("retries", Json::from(d.retries as u64)),
            ("failed_queries", Json::from(d.failed_queries as u64)),
        ])
    };
    Json::object([
        ("tick", Json::from(h.tick)),
        ("degraded", Json::from(h.is_degraded())),
        ("dead_letter_depth", Json::from(h.dead_letter_depth as u64)),
        ("shards_failed", Json::from(h.shards_failed as u64)),
        ("sps", dataset(&h.sps)),
        ("advisor", dataset(&h.advisor)),
        ("price", dataset(&h.price)),
    ])
}

pub(crate) fn correlate(db: &Database, request: &HttpRequest) -> HttpResponse {
    let Some(instance_type) = request.param("instance_type") else {
        return HttpResponse::error(400, "missing required parameter: instance_type");
    };
    let Some(region) = request.param("region") else {
        return HttpResponse::error(400, "missing required parameter: region");
    };

    // SPS and price live at (type, az); the advisor at (type, region).
    let mut sps_query = Query::measure("sps")
        .filter("instance_type", instance_type)
        .filter("region", region);
    let mut price_query = Query::measure("spot_price")
        .filter("instance_type", instance_type)
        .filter("region", region);
    if let Some(az) = request.param("az") {
        sps_query = sps_query.filter("az", az);
        price_query = price_query.filter("az", az);
    }
    let advisor_query = Query::measure("if_score")
        .filter("instance_type", instance_type)
        .filter("region", region);

    let sps = match db.query("sps", &sps_query) {
        Ok(rows) => to_series(rows),
        Err(e) => return HttpResponse::error(404, &e.to_string()),
    };
    if sps.len() < 2 {
        return HttpResponse::error(
            404,
            &format!("not enough archived sps samples for {instance_type} in {region}"),
        );
    }
    let if_series = db
        .query("advisor", &advisor_query)
        .map(to_series)
        .unwrap_or_default();
    let price = db
        .query("price", &price_query)
        .map(to_series)
        .unwrap_or_default();

    let pair = |a: &[(u64, f64)], b: &[(u64, f64)]| -> Json {
        let (xs, ys) = align_step(a, b);
        Json::object([
            ("samples", Json::from(xs.len() as u64)),
            (
                "pearson",
                pearson(&xs, &ys).map_or(Json::Null, Json::Number),
            ),
            (
                "spearman",
                spearman(&xs, &ys).map_or(Json::Null, Json::Number),
            ),
        ])
    };

    // Figure 9's difference histogram for this pool.
    let (sps_aligned, if_aligned) = align_step(&sps, &if_series);
    let mut differences = Histogram::difference_bins();
    differences.extend(
        sps_aligned
            .iter()
            .zip(&if_aligned)
            .map(|(a, b)| (a - b).abs()),
    );
    let histogram: Vec<Json> = differences
        .rows()
        .into_iter()
        .map(|(center, share)| {
            Json::object([
                ("difference", Json::from(center)),
                ("share_pct", Json::from(share)),
            ])
        })
        .collect();

    HttpResponse::json(
        Json::object([
            ("instance_type", Json::from(instance_type)),
            ("region", Json::from(region)),
            ("sps_x_if", pair(&sps, &if_series)),
            ("sps_x_price", pair(&sps, &price)),
            ("if_x_price", correlate_steps(&sps, &if_series, &price)),
            ("difference_histogram", Json::Array(histogram)),
        ])
        .render(),
    )
}

/// IF and price are both step series; sample both on the SPS tick grid.
fn correlate_steps(ticks: &[(u64, f64)], a: &[(u64, f64)], b: &[(u64, f64)]) -> Json {
    let a_sampled = align_step(ticks, a).1;
    let b_sampled = align_step(ticks, b).1;
    let n = a_sampled.len().min(b_sampled.len());
    let (xs, ys) = (
        &a_sampled[a_sampled.len() - n..],
        &b_sampled[b_sampled.len() - n..],
    );
    Json::object([
        ("samples", Json::from(n as u64)),
        ("pearson", pearson(xs, ys).map_or(Json::Null, Json::Number)),
        (
            "spearman",
            spearman(xs, ys).map_or(Json::Null, Json::Number),
        ),
    ])
}

fn to_series(rows: Vec<Row>) -> Vec<(u64, f64)> {
    rows.into_iter().map(|r| (r.time, r.value)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::ArchiveService;
    use spotlake_timestream::{Record, TableOptions};

    fn archive_with_history() -> Database {
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        db.create_table("advisor", TableOptions::default()).unwrap();
        db.create_table("price", TableOptions::default()).unwrap();
        for t in 0..50u64 {
            db.write(
                "sps",
                &[
                    Record::new(t * 600, "sps", if t % 7 < 5 { 3.0 } else { 2.0 })
                        .dimension("instance_type", "m5.large")
                        .dimension("region", "us-east-1")
                        .dimension("az", "us-east-1a"),
                ],
            )
            .unwrap();
        }
        for t in [0u64, 15_000] {
            db.write(
                "advisor",
                &[Record::new(t, "if_score", if t == 0 { 2.5 } else { 2.0 })
                    .dimension("instance_type", "m5.large")
                    .dimension("region", "us-east-1")],
            )
            .unwrap();
            db.write(
                "price",
                &[Record::new(t, "spot_price", 0.03 + t as f64 * 1e-7)
                    .dimension("instance_type", "m5.large")
                    .dimension("region", "us-east-1")
                    .dimension("az", "us-east-1a")],
            )
            .unwrap();
        }
        db
    }

    fn get(db: &Database, path: &str) -> HttpResponse {
        ArchiveService::handle(db, &HttpRequest::get(path).unwrap())
    }

    #[test]
    fn stats_lists_tables_and_points() {
        let db = archive_with_history();
        let r = get(&db, "/stats");
        assert_eq!(r.status, 200);
        let body = r.body_text();
        assert!(body.contains("\"sps\""));
        assert!(body.contains("total_points"));
    }

    #[test]
    fn correlate_reports_all_pairs() {
        let db = archive_with_history();
        let r = get(&db, "/correlate?instance_type=m5.large&region=us-east-1");
        assert_eq!(r.status, 200, "{}", r.body_text());
        let body = r.body_text();
        assert!(body.contains("sps_x_if"));
        assert!(body.contains("sps_x_price"));
        assert!(body.contains("if_x_price"));
        assert!(body.contains("spearman"));
        assert!(body.contains("difference_histogram"));
    }

    #[test]
    fn correlate_validates_parameters() {
        let db = archive_with_history();
        assert_eq!(get(&db, "/correlate").status, 400);
        assert_eq!(get(&db, "/correlate?instance_type=m5.large").status, 400);
        assert_eq!(
            get(&db, "/correlate?instance_type=warp9.huge&region=us-east-1").status,
            404
        );
    }
}
