//! CSV export for bulk downloads.

use spotlake_timestream::Row;
use std::collections::BTreeSet;

/// Renders rows as CSV: a `time,value` prefix plus one column per dimension
/// key seen anywhere in the result set (blank where a row lacks the key).
/// Fields containing commas, quotes, or newlines are quoted per RFC 4180.
pub fn rows_to_csv(rows: &[Row]) -> String {
    let dim_keys: BTreeSet<&str> = rows
        .iter()
        .flat_map(|r| r.dimensions.iter().map(|(k, _)| k.as_str()))
        .collect();

    let mut out = String::new();
    out.push_str("time,value");
    for k in &dim_keys {
        out.push(',');
        push_field(&mut out, k);
    }
    out.push('\n');

    for row in rows {
        out.push_str(&row.time.to_string());
        out.push(',');
        out.push_str(&format_value(row.value));
        for k in &dim_keys {
            out.push(',');
            let v = row
                .dimensions
                .iter()
                .find(|(rk, _)| rk == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            push_field(&mut out, v);
        }
        out.push('\n');
    }
    out
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(time: u64, value: f64, dims: &[(&str, &str)]) -> Row {
        Row {
            time,
            value,
            dimensions: dims
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn renders_header_and_rows() {
        let rows = vec![
            row(
                600,
                3.0,
                &[("instance_type", "m5.large"), ("region", "us-east-1")],
            ),
            row(1200, 2.5, &[("instance_type", "p3.2xlarge")]),
        ];
        let csv = rows_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,value,instance_type,region");
        assert_eq!(lines[1], "600,3,m5.large,us-east-1");
        assert_eq!(lines[2], "1200,2.5,p3.2xlarge,");
    }

    #[test]
    fn quotes_special_fields() {
        let rows = vec![row(0, 1.0, &[("note", "a,b \"c\"")])];
        let csv = rows_to_csv(&rows);
        assert!(csv.contains("\"a,b \"\"c\"\"\""));
    }

    #[test]
    fn empty_rows_give_header_only() {
        assert_eq!(rows_to_csv(&[]), "time,value\n");
    }
}
