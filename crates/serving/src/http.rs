//! Minimal HTTP request/response model (the "API Gateway" wire format).

use bytes::Bytes;
use std::error::Error;
use std::fmt;

/// Errors from request parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request line/path was malformed.
    BadRequest {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
        }
    }
}

impl Error for ServeError {}

/// An HTTP request: method GET only (the archive is read-only), a path, and
/// decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    path: String,
    params: Vec<(String, String)>,
}

impl HttpRequest {
    /// Parses a GET request from a path-and-query string like
    /// `/query?table=sps&region=us-east-1`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for empty paths or malformed
    /// query pairs.
    pub fn get(path_and_query: &str) -> Result<Self, ServeError> {
        if !path_and_query.starts_with('/') {
            return Err(ServeError::BadRequest {
                reason: format!("path must start with '/': {path_and_query:?}"),
            });
        }
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (path_and_query, None),
        };
        let mut params = Vec::new();
        if let Some(query) = query {
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(|| ServeError::BadRequest {
                    reason: format!("query pair without '=': {pair:?}"),
                })?;
                params.push((url_decode(k), url_decode(v)));
            }
        }
        Ok(HttpRequest {
            path: path.to_owned(),
            params,
        })
    }

    /// The request path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The first value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All query parameters in order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// Reconstructs the path-and-query string for logging — parameters in
    /// their original order, so the same request always renders the same
    /// way in flight-recorder entries and trace spans.
    pub fn path_and_query(&self) -> String {
        if self.params.is_empty() {
            return self.path.clone();
        }
        let query: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}?{}", self.path, query.join("&"))
    }
}

/// Percent-decoding for query strings (`%xx` and `+` → space).
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if let (Some(h), Some(l)) = (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    out.push((h * 16 + l) as u8);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// MIME type of the body.
    pub content_type: &'static str,
    /// Response body.
    pub body: Bytes,
}

impl HttpResponse {
    /// A 200 JSON response.
    pub fn json(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "application/json",
            body: Bytes::from(body),
        }
    }

    /// A 200 CSV response.
    pub fn csv(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/csv",
            body: Bytes::from(body),
        }
    }

    /// A 200 plain-text response in the Prometheus exposition format
    /// (`/metrics` only — the version parameter is part of that contract).
    pub fn text(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: Bytes::from(body),
        }
    }

    /// A 200 plain-text response (JSONL dumps and other non-Prometheus
    /// text).
    pub fn plain(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain",
            body: Bytes::from(body),
        }
    }

    /// A 200 HTML response.
    pub fn html(body: &'static str) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/html",
            body: Bytes::from_static(body.as_bytes()),
        }
    }

    /// An error response with a JSON body.
    pub fn error(status: u16, message: &str) -> Self {
        let body =
            crate::json::Json::object([("error", crate::json::Json::string(message))]).render();
        HttpResponse {
            status,
            content_type: "application/json",
            body: Bytes::from(body),
        }
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_path_and_params() {
        let r = HttpRequest::get("/query?table=sps&instance_type=m5.large&from=0").unwrap();
        assert_eq!(r.path(), "/query");
        assert_eq!(r.param("table"), Some("sps"));
        assert_eq!(r.param("instance_type"), Some("m5.large"));
        assert_eq!(r.param("missing"), None);
        assert_eq!(r.params().len(), 3);
    }

    #[test]
    fn parse_no_query() {
        let r = HttpRequest::get("/health").unwrap();
        assert_eq!(r.path(), "/health");
        assert!(r.params().is_empty());
        assert_eq!(r.path_and_query(), "/health");
    }

    #[test]
    fn path_and_query_round_trips_parameter_order() {
        let r = HttpRequest::get("/query?table=sps&instance_type=m5.large").unwrap();
        assert_eq!(
            r.path_and_query(),
            "/query?table=sps&instance_type=m5.large"
        );
        let swapped = HttpRequest::get("/query?instance_type=m5.large&table=sps").unwrap();
        assert_eq!(
            swapped.path_and_query(),
            "/query?instance_type=m5.large&table=sps"
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(HttpRequest::get("query").is_err());
        assert!(HttpRequest::get("/q?novalue").is_err());
    }

    #[test]
    fn url_decoding() {
        let r = HttpRequest::get("/q?a=hello%20world&b=1%2B1&c=x+y").unwrap();
        assert_eq!(r.param("a"), Some("hello world"));
        assert_eq!(r.param("b"), Some("1+1"));
        assert_eq!(r.param("c"), Some("x y"));
        // Malformed escape is passed through.
        let r = HttpRequest::get("/q?a=50%").unwrap();
        assert_eq!(r.param("a"), Some("50%"));
    }

    #[test]
    fn responses() {
        let r = HttpResponse::json("{}".into());
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/json");
        let e = HttpResponse::error(404, "no such table");
        assert_eq!(e.status, 404);
        assert!(e.body_text().contains("no such table"));
    }
}
