//! The gateway router and the "Lambda" handlers.

use crate::csv::rows_to_csv;
use crate::http::{HttpRequest, HttpResponse};
use crate::json::Json;
use crate::ops::OpsContext;
use spotlake_obs::{FlightEntry, FlightRecorder, QueryCtx, Readiness, Registry, TraceJournal};
use spotlake_timestream::{Aggregate, Database, Query, QueryProfile, Row, TsError};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned lock: a panicking
/// worker thread must not take the gateway's trace journal down with it
/// (the journal's mutations are append-only and complete per call).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default measure per well-known archive table; unknown tables must name
/// their measure explicitly (a wrong silent default would return an empty
/// result instead of an error).
fn default_measure(table: &str) -> Option<&'static str> {
    match table {
        "advisor" => Some("if_score"),
        "price" => Some("spot_price"),
        "sps" => Some("sps"),
        _ => None,
    }
}

/// Dimension keys a query may filter on.
const FILTER_KEYS: [&str; 3] = ["instance_type", "region", "az"];

/// Maximum rows a single response returns without an explicit `limit`.
const DEFAULT_LIMIT: usize = 10_000;

/// The static front-end page (served "from object storage" in the paper's
/// architecture).
const INDEX_HTML: &str = "<!doctype html>\n<html><head><title>SpotLake</title></head>\n<body>\n<h1>SpotLake — spot instance dataset archive</h1>\n<p>Query the archive with <code>/query?table=sps&amp;instance_type=m5.large&amp;region=us-east-1</code>.\nEndpoints: /query /latest /at /window /correlate /stats /tables /health /metrics /quality /debug/queries /debug/traces.\nAdd <code>&amp;explain=1</code> to any row query for its plan and cost profile.</p>\n</body></html>\n";

/// Known endpoint paths, used to bound the cardinality of the gateway's
/// per-endpoint metrics (unknown paths are all labelled `other`).
const ENDPOINTS: [&str; 13] = [
    "/",
    "/health",
    "/metrics",
    "/tables",
    "/stats",
    "/correlate",
    "/query",
    "/latest",
    "/at",
    "/window",
    "/quality",
    "/debug/queries",
    "/debug/traces",
];

/// The stateful gateway: routes requests like [`ArchiveService`] and
/// additionally owns the `spotlake_http_*` registry of per-endpoint
/// request counters and size histograms, serves `/metrics` merged across
/// every layer's registry, and answers `/health` from real readiness
/// instead of a constant.
///
/// It also owns the query observability state: a [`TraceJournal`] of
/// per-query spans (root `query` span plus one child per cost stage), and
/// a [`FlightRecorder`] retaining the most expensive queries for
/// `/debug/queries` and the `/stats` slow-query listing.
///
/// The gateway is `Send + Sync`: the [`server`](crate::server) worker
/// pool routes concurrent requests through one shared instance.
#[derive(Debug, Default)]
pub struct Gateway {
    http: Registry,
    flight: FlightRecorder,
    traces: Mutex<TraceJournal>,
}

impl Clone for Gateway {
    fn clone(&self) -> Self {
        Gateway {
            http: self.http.clone(),
            flight: self.flight.clone(),
            traces: Mutex::new(lock(&self.traces).clone()),
        }
    }
}

impl Gateway {
    /// Creates a gateway with an empty request registry.
    pub fn new() -> Self {
        Gateway::default()
    }

    /// The gateway's own registry (`spotlake_http_*` families).
    pub fn http_metrics(&self) -> &Registry {
        &self.http
    }

    /// The slow-query flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Renders the gateway's query trace journal as JSON lines.
    pub fn query_trace_text(&self) -> String {
        lock(&self.traces).render()
    }

    /// Appends one event to the trace journal — how the serving engine
    /// records SLO alert transitions alongside the query spans, so
    /// `/debug/traces` shows alerts in stream order with the traffic
    /// that caused them.
    pub fn record_event(&self, tick: u64, name: &str, attrs: &[(&str, String)]) {
        lock(&self.traces).event(tick, name, attrs);
    }

    /// Routes a request, recording it in the gateway's registry.
    ///
    /// Response *size* stands in for latency in the histogram: handler
    /// cost in this in-process service is dominated by rows serialised,
    /// and wall-clock timing would break the byte-identical-metrics
    /// contract.
    pub fn handle(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let response = route(self, db, request, ops);
        let path = match request.path() {
            "/index.html" => "/",
            p if ENDPOINTS.contains(&p) => p,
            _ => "other",
        };
        let status = response.status.to_string();
        self.http.counter_add(
            "spotlake_http_requests_total",
            "Requests served per endpoint and status.",
            &[("path", path), ("status", &status)],
            1,
        );
        self.http.histogram_record(
            "spotlake_http_response_bytes",
            "Response body size per endpoint (deterministic latency proxy).",
            &[("path", path)],
            response.body.len() as f64,
        );
        response
    }

    /// `/health`: aggregates the store's own readiness with whatever the
    /// operator lent through [`OpsContext::health`]. Degraded states still
    /// answer 200 (the archive serves what it has); only `unhealthy`
    /// returns 503.
    fn health(db: &Database, ops: &OpsContext) -> HttpResponse {
        let tables = db.table_names().len();
        let mut components = vec![(
            "store".to_owned(),
            Readiness::Ready,
            format!("{tables} tables, {} points", db.point_count()),
        )];
        if let Some(report) = ops.health {
            for c in &report.components {
                components.push((c.name.clone(), c.readiness, c.detail.clone()));
            }
        }
        let overall = components
            .iter()
            .map(|(_, r, _)| *r)
            .max()
            .unwrap_or(Readiness::Ready);
        let items: Vec<Json> = components
            .into_iter()
            .map(|(name, readiness, detail)| {
                Json::object([
                    ("name", Json::from(name.as_str())),
                    ("status", Json::from(readiness.as_str())),
                    ("detail", Json::from(detail.as_str())),
                ])
            })
            .collect();
        let body = Json::object([
            ("status", Json::from(overall.as_str())),
            ("components", Json::Array(items)),
        ])
        .render();
        match overall {
            Readiness::Unhealthy => HttpResponse {
                status: 503,
                content_type: "application/json",
                body: body.into(),
            },
            _ => HttpResponse::json(body),
        }
    }

    /// `/metrics`: one Prometheus text document merged across the store's
    /// registry, the gateway's own, and everything lent via
    /// [`OpsContext::registries`].
    fn metrics(&self, db: &Database, ops: &OpsContext) -> HttpResponse {
        let mut registries = vec![db.metrics(), &self.http];
        registries.extend(ops.registries.iter().copied());
        HttpResponse::text(Registry::render_merged(registries))
    }

    /// Allocates the query context for one row request: the next trace id
    /// from the gateway's journal, at the operator-supplied tick, carrying
    /// the wire-level request id (when the serving layer lent one).
    fn new_ctx(&self, ops: &OpsContext) -> QueryCtx {
        QueryCtx {
            trace_id: lock(&self.traces).next_trace_id(),
            tick: ops.tick,
            request_id: ops.request_id,
        }
    }

    /// Finishes a profiled query: stamps response size into the profile,
    /// emits the root span plus one child span per cost stage, records the
    /// flight-recorder entry and the `spotlake_query_cost` histogram, and
    /// swaps in the EXPLAIN body when `explain=1` was requested.
    ///
    /// Responses that failed *after* the scan (bad `limit`/`format`) pass
    /// through untouched: the profile is incomplete and recording it would
    /// skew the flight recorder with parameter errors.
    fn complete(
        &self,
        request: &HttpRequest,
        mut profile: QueryProfile,
        rows_returned: u64,
        response: HttpResponse,
    ) -> HttpResponse {
        if response.status != 200 {
            return response;
        }
        profile.rows_returned = rows_returned;
        profile.response_bytes = response.body.len() as u64;
        let cost = profile.cost();
        let query_str = request.path_and_query();
        {
            let mut traces = lock(&self.traces);
            let root = traces.begin_span(profile.tick, "query");
            traces.span_attr(root, "trace_id", profile.trace_id.to_string());
            traces.span_attr(root, "request_id", profile.request_id.to_string());
            traces.span_attr(root, "op", profile.op.to_owned());
            traces.span_attr(root, "table", profile.table.clone());
            traces.span_attr(root, "query", query_str.clone());
            traces.span_attr(root, "cost", cost.to_string());
            // One child span per stage group; the counters within a stage
            // become that span's attributes.
            let mut current: Option<(&str, spotlake_obs::SpanId)> = None;
            for (stage, name, value) in profile.stages() {
                let span = match current {
                    Some((open, span)) if open == stage => span,
                    _ => {
                        if let Some((_, open)) = current {
                            traces.end_span(open, profile.tick);
                        }
                        let span = traces.begin_child_span(profile.tick, stage, root);
                        current = Some((stage, span));
                        span
                    }
                };
                traces.span_attr(span, name, value.to_string());
            }
            if let Some((_, open)) = current {
                traces.end_span(open, profile.tick);
            }
            traces.end_span(root, profile.tick);
        }
        self.flight.record(FlightEntry {
            trace_id: profile.trace_id,
            request_id: profile.request_id,
            tick: profile.tick,
            op: profile.op.to_owned(),
            query: query_str,
            cost,
            rows: rows_returned,
            response_bytes: profile.response_bytes,
        });
        self.http.histogram_record(
            "spotlake_query_cost",
            "Deterministic cost proxy per completed query (work units).",
            &[("table", profile.table.as_str()), ("op", profile.op)],
            cost as f64,
        );
        if wants_explain(request) {
            HttpResponse::json(explain_json(&profile).render())
        } else {
            response
        }
    }

    /// `/query`: raw row scan, profiled.
    fn query(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let (table, q) = match ArchiveService::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let degraded = degraded_shards(request, &table, ops);
        match db.query_profiled(&table, &q, self.new_ctx(ops)) {
            Ok((rows, profile)) => {
                let (response, returned) = ArchiveService::respond_rows(request, rows, &degraded);
                self.complete(request, profile, returned, response)
            }
            Err(e) => store_error(e),
        }
    }

    /// `/latest`: last in-range point per series, profiled.
    fn latest(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let (table, q) = match ArchiveService::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let degraded = degraded_shards(request, &table, ops);
        match db.latest_profiled(&table, &q, self.new_ctx(ops)) {
            Ok((rows, profile)) => {
                let (response, returned) = ArchiveService::respond_rows(request, rows, &degraded);
                self.complete(request, profile, returned, response)
            }
            Err(e) => store_error(e),
        }
    }

    /// `/at`: value in effect at a timestamp, profiled.
    fn at(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let at = match request.param("timestamp").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => return HttpResponse::error(400, "timestamp must be an integer"),
            None => return HttpResponse::error(400, "missing required parameter: timestamp"),
        };
        let (table, q) = match ArchiveService::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let degraded = degraded_shards(request, &table, ops);
        match db.value_at_profiled(&table, &q, at, self.new_ctx(ops)) {
            Ok((rows, profile)) => {
                let (response, returned) = ArchiveService::respond_rows(request, rows, &degraded);
                self.complete(request, profile, returned, response)
            }
            Err(e) => store_error(e),
        }
    }

    /// `/window`: tumbling-window aggregation, profiled.
    fn window(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let (table, q) = match ArchiveService::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let window = match request.param("window").map(str::parse) {
            Some(Ok(w)) if w > 0 => w,
            Some(_) => return HttpResponse::error(400, "window must be a positive integer"),
            None => 86_400,
        };
        let agg = match request.param("agg").unwrap_or("mean") {
            "mean" => Aggregate::Mean,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "last" => Aggregate::Last,
            other => {
                return HttpResponse::error(
                    400,
                    &format!("unknown agg: {other} (mean|min|max|count|sum|last)"),
                )
            }
        };
        let degraded = degraded_shards(request, &table, ops);
        match db.query_window_profiled(&table, &q, window, agg, self.new_ctx(ops)) {
            Ok((rows, profile)) => {
                let returned = rows.len() as u64;
                let items: Vec<Json> = rows
                    .iter()
                    .map(|w| {
                        Json::object([
                            ("window_start", Json::from(w.window_start)),
                            ("value", Json::from(w.value)),
                            ("count", Json::from(w.count as u64)),
                        ])
                    })
                    .collect();
                let mut fields = vec![("windows", Json::Array(items))];
                fields.extend(degraded_fields(&degraded));
                let response = HttpResponse::json(Json::object(fields).render());
                self.complete(request, profile, returned, response)
            }
            Err(e) => store_error(e),
        }
    }

    /// `/debug/queries`: the flight recorder's retained top-N, most
    /// expensive first.
    fn debug_queries(&self) -> HttpResponse {
        let queries: Vec<Json> = self
            .flight
            .snapshot()
            .iter()
            .map(|e| {
                Json::object([
                    ("trace_id", Json::from(e.trace_id)),
                    ("request_id", Json::from(e.request_id)),
                    ("tick", Json::from(e.tick)),
                    ("op", Json::from(e.op.as_str())),
                    ("query", Json::from(e.query.as_str())),
                    ("cost", Json::from(e.cost)),
                    ("rows", Json::from(e.rows)),
                    ("response_bytes", Json::from(e.response_bytes)),
                ])
            })
            .collect();
        HttpResponse::json(
            Json::object([
                ("capacity", Json::from(self.flight.capacity() as u64)),
                ("observed", Json::from(self.flight.observed())),
                ("queries", Json::Array(queries)),
            ])
            .render(),
        )
    }

    /// `/debug/traces`: the gateway's query trace journal as JSON lines.
    fn debug_traces(&self) -> HttpResponse {
        HttpResponse::plain(lock(&self.traces).render())
    }
}

/// Whether the request asked for EXPLAIN output instead of rows.
fn wants_explain(request: &HttpRequest) -> bool {
    matches!(request.param("explain"), Some("1") | Some("true"))
}

/// Renders the EXPLAIN body for a completed profile: the executed plan
/// (op, table, measure, filters, range) plus per-stage cost counters and
/// the total cost. `from`/`to` render as strings so `u64::MAX` survives
/// JSON's f64 numbers unmangled.
fn explain_json(profile: &QueryProfile) -> Json {
    let filters = Json::Object(
        profile
            .filters
            .iter()
            .map(|(k, v)| (k.clone(), Json::string(v)))
            .collect(),
    );
    let mut stages: Vec<(&'static str, Vec<(&'static str, u64)>)> = Vec::new();
    for (stage, name, value) in profile.stages() {
        match stages.last_mut() {
            Some((open, counters)) if *open == stage => counters.push((name, value)),
            _ => stages.push((stage, vec![(name, value)])),
        }
    }
    let stage_items: Vec<Json> = stages
        .into_iter()
        .map(|(stage, counters)| {
            let counter_obj = Json::object(counters.into_iter().map(|(k, v)| (k, Json::from(v))));
            Json::object([("stage", Json::from(stage)), ("counters", counter_obj)])
        })
        .collect();
    Json::object([(
        "explain",
        Json::object([
            ("op", Json::from(profile.op)),
            ("table", Json::from(profile.table.as_str())),
            ("measure", Json::from(profile.measure.as_str())),
            ("filters", filters),
            ("from", Json::string(profile.from.to_string())),
            ("to", Json::string(profile.to.to_string())),
            ("trace_id", Json::from(profile.trace_id)),
            ("request_id", Json::from(profile.request_id)),
            ("tick", Json::from(profile.tick)),
            ("stages", Json::Array(stage_items)),
            ("cost", Json::from(profile.cost())),
        ]),
    )])
}

/// The archive web service: a stateless router over a
/// [`Database`].
///
/// Kept for callers that only have an archive: routes identically to
/// [`Gateway`] with an empty [`OpsContext`], but records no request
/// metrics. `/health` still reports the store's real state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArchiveService;

impl ArchiveService {
    /// Routes a request to its handler.
    pub fn handle(db: &Database, request: &HttpRequest) -> HttpResponse {
        route(&Gateway::new(), db, request, &OpsContext::none())
    }

    fn tables(db: &Database) -> HttpResponse {
        let names: Vec<Json> = db.table_names().into_iter().map(Json::from).collect();
        HttpResponse::json(Json::object([("tables", Json::Array(names))]).render())
    }

    /// Builds the timestream query from request parameters. Returns the
    /// table name and query.
    fn build_query(db: &Database, request: &HttpRequest) -> Result<(String, Query), HttpResponse> {
        let table = request
            .param("table")
            .ok_or_else(|| HttpResponse::error(400, "missing required parameter: table"))?
            .to_owned();
        let measure = match request.param("measure").or_else(|| default_measure(&table)) {
            Some(m) => m.to_owned(),
            None => {
                // Unknown table -> 404; known-but-custom table -> ask for
                // an explicit measure instead of silently matching nothing.
                return Err(match db.table(&table) {
                    Err(e) => HttpResponse::error(404, &e.to_string()),
                    Ok(_) => HttpResponse::error(
                        400,
                        &format!("table {table:?} has no default measure; pass ?measure="),
                    ),
                });
            }
        };
        let mut q = Query::measure(measure);
        for key in FILTER_KEYS {
            if let Some(v) = request.param(key) {
                q = q.filter(key, v);
            }
        }
        let from = match request.param("from") {
            Some(s) => s
                .parse()
                .map_err(|_| HttpResponse::error(400, "from must be an integer timestamp"))?,
            None => 0,
        };
        let to = match request.param("to") {
            Some(s) => s
                .parse()
                .map_err(|_| HttpResponse::error(400, "to must be an integer timestamp"))?,
            None => u64::MAX,
        };
        Ok((table, q.between(from, to)))
    }

    /// Serialises rows to the requested format, applying `limit`. Also
    /// returns how many rows the response carries, for the query profile.
    /// Non-empty `degraded` (impaired shards the request touches) flags
    /// the JSON body as a partial answer; CSV stays schema-stable and
    /// unannotated.
    fn respond_rows(
        request: &HttpRequest,
        mut rows: Vec<Row>,
        degraded: &[String],
    ) -> (HttpResponse, u64) {
        let limit = match request.param("limit") {
            Some(s) => match s.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return (HttpResponse::error(400, "limit must be an integer"), 0),
            },
            None => DEFAULT_LIMIT,
        };
        let truncated = rows.len() > limit;
        rows.truncate(limit);
        let returned = rows.len() as u64;
        let response = match request.param("format") {
            Some("csv") => HttpResponse::csv(rows_to_csv(&rows)),
            Some("json") | None => {
                let items: Vec<Json> = rows.iter().map(row_to_json).collect();
                let mut fields = vec![
                    ("rows", Json::Array(items)),
                    ("truncated", Json::from(truncated)),
                ];
                fields.extend(degraded_fields(degraded));
                HttpResponse::json(Json::object(fields).render())
            }
            Some(other) => {
                return (
                    HttpResponse::error(400, &format!("unknown format: {other} (json|csv)")),
                    0,
                )
            }
        };
        (response, returned)
    }
}

/// The impaired (quarantined or failed) shards a row request touches:
/// the request's table crossed with its `region` filter — no region
/// filter means every region's shard is in scope. Empty when the
/// archive is unsharded or every relevant shard is healthy. The merged
/// view already excludes lost shards' unrecovered data, so a non-empty
/// result means "these rows are missing a slice", not "this answer is
/// wrong".
fn degraded_shards(request: &HttpRequest, table: &str, ops: &OpsContext) -> Vec<String> {
    let Some(shards) = ops.shards else {
        return Vec::new();
    };
    let region = request.param("region");
    shards
        .impaired()
        .filter(|r| r.dataset == table)
        .filter(|r| region.is_none_or(|want| r.region == want))
        .map(|r| format!("{}/{}", r.dataset, r.region))
        .collect()
}

/// The JSON fields flagging a partial answer, when `degraded` is
/// non-empty: `"degraded":true` plus the impaired shard list.
fn degraded_fields(degraded: &[String]) -> Vec<(&'static str, Json)> {
    if degraded.is_empty() {
        return Vec::new();
    }
    let shards: Vec<Json> = degraded.iter().map(Json::string).collect();
    vec![
        ("degraded", Json::from(true)),
        ("quarantined_shards", Json::Array(shards)),
    ]
}

/// The router shared by [`Gateway::handle`] and [`ArchiveService::handle`].
fn route(
    gateway: &Gateway,
    db: &Database,
    request: &HttpRequest,
    ops: &OpsContext,
) -> HttpResponse {
    match request.path() {
        "/" | "/index.html" => HttpResponse::html(INDEX_HTML),
        "/health" => Gateway::health(db, ops),
        "/metrics" => gateway.metrics(db, ops),
        "/tables" => ArchiveService::tables(db),
        "/stats" => crate::insights::stats(db, gateway, ops),
        "/correlate" => crate::insights::correlate(db, request),
        "/quality" => crate::insights::quality(ops),
        "/query" => gateway.query(db, request, ops),
        "/latest" => gateway.latest(db, request, ops),
        "/at" => gateway.at(db, request, ops),
        "/window" => gateway.window(db, request, ops),
        "/debug/queries" => gateway.debug_queries(),
        "/debug/traces" => gateway.debug_traces(),
        other => HttpResponse::error(404, &format!("no such endpoint: {other}")),
    }
}

fn row_to_json(row: &Row) -> Json {
    let dims = Json::Object(
        row.dimensions
            .iter()
            .map(|(k, v)| (k.clone(), Json::string(v)))
            .collect(),
    );
    Json::object([
        ("time", Json::from(row.time)),
        ("value", Json::from(row.value)),
        ("dimensions", dims),
    ])
}

fn store_error(e: TsError) -> HttpResponse {
    match e {
        TsError::NoSuchTable(_) => HttpResponse::error(404, &e.to_string()),
        other => HttpResponse::error(500, &other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_timestream::{Record, TableOptions};

    fn archive() -> Database {
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        db.create_table("advisor", TableOptions::default()).unwrap();
        for t in 0..5u64 {
            db.write(
                "sps",
                &[
                    Record::new(t * 600, "sps", 3.0 - (t % 3) as f64)
                        .dimension("instance_type", "m5.large")
                        .dimension("region", "us-east-1")
                        .dimension("az", "us-east-1a"),
                    Record::new(t * 600, "sps", 1.0)
                        .dimension("instance_type", "p3.2xlarge")
                        .dimension("region", "us-east-1")
                        .dimension("az", "us-east-1a"),
                ],
            )
            .unwrap();
        }
        db.write(
            "advisor",
            &[Record::new(0, "if_score", 2.5)
                .dimension("instance_type", "m5.large")
                .dimension("region", "us-east-1")],
        )
        .unwrap();
        db
    }

    fn get(db: &Database, path: &str) -> HttpResponse {
        ArchiveService::handle(db, &HttpRequest::get(path).unwrap())
    }

    #[test]
    fn health_tables_index() {
        let db = archive();
        assert_eq!(get(&db, "/health").status, 200);
        let tables = get(&db, "/tables");
        assert!(tables.body_text().contains("sps"));
        assert!(tables.body_text().contains("advisor"));
        let index = get(&db, "/");
        assert_eq!(index.content_type, "text/html");
        assert_eq!(get(&db, "/nope").status, 404);
    }

    #[test]
    fn query_filters_and_formats() {
        let db = archive();
        let r = get(&db, "/query?table=sps&instance_type=m5.large");
        assert_eq!(r.status, 200);
        let body = r.body_text();
        assert!(body.contains("\"rows\""));
        assert!(body.contains("m5.large"));
        assert!(!body.contains("p3.2xlarge"));

        let csv = get(&db, "/query?table=sps&instance_type=m5.large&format=csv");
        assert_eq!(csv.content_type, "text/csv");
        assert!(csv.body_text().starts_with("time,value"));

        let bad = get(&db, "/query?table=sps&format=xml");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn query_time_range_and_limit() {
        let db = archive();
        let r = get(
            &db,
            "/query?table=sps&from=600&to=1200&instance_type=m5.large",
        );
        let body = r.body_text();
        assert!(body.contains("\"time\":600"));
        assert!(body.contains("\"time\":1200"));
        assert!(!body.contains("\"time\":1800"));

        let limited = get(&db, "/query?table=sps&limit=1");
        assert!(limited.body_text().contains("\"truncated\":true"));
        let bad = get(&db, "/query?table=sps&limit=x");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn latest_and_at() {
        let db = archive();
        let r = get(&db, "/latest?table=sps&instance_type=m5.large");
        assert!(r.body_text().contains("\"time\":2400"));

        let r = get(&db, "/at?table=sps&timestamp=700&instance_type=m5.large");
        assert!(r.body_text().contains("\"time\":600"));
        assert_eq!(get(&db, "/at?table=sps").status, 400);
    }

    #[test]
    fn window_aggregation() {
        let db = archive();
        let r = get(
            &db,
            "/window?table=sps&window=1200&agg=count&instance_type=m5.large",
        );
        let body = r.body_text();
        assert!(body.contains("\"windows\""));
        assert!(body.contains("\"count\":2"));
        assert_eq!(get(&db, "/window?table=sps&agg=median").status, 400);
        assert_eq!(get(&db, "/window?table=sps&window=0").status, 400);
    }

    #[test]
    fn advisor_default_measure() {
        let db = archive();
        let r = get(&db, "/query?table=advisor");
        assert!(r.body_text().contains("\"value\":2.5"));
    }

    #[test]
    fn missing_table_is_404() {
        let db = archive();
        assert_eq!(get(&db, "/query?table=nope").status, 404);
        assert_eq!(get(&db, "/query").status, 400);
    }

    #[test]
    fn health_reports_store_and_lent_components() {
        use spotlake_obs::{HealthReport, Readiness};
        let db = archive();
        // Bare archive: store only, ok.
        let r = get(&db, "/health");
        assert_eq!(r.status, 200);
        let body = r.body_text();
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"name\":\"store\""));
        assert!(body.contains("2 tables"));

        // A degraded collector degrades the body but still answers 200.
        let gateway = Gateway::new();
        let mut report = HealthReport::new();
        report.push("collector/sps", Readiness::Degraded, "breaker open");
        let ops = OpsContext {
            health: Some(&report),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/health").unwrap(), &ops);
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains("\"status\":\"degraded\""));
        assert!(r.body_text().contains("breaker open"));

        // Unhealthy flips to 503.
        report.push("collector/price", Readiness::Unhealthy, "all failed");
        let ops = OpsContext {
            health: Some(&report),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/health").unwrap(), &ops);
        assert_eq!(r.status, 503);
        assert!(r.body_text().contains("\"status\":\"unhealthy\""));
    }

    #[test]
    fn metrics_merges_store_and_http_families() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        // Generate some traffic first so http families exist.
        gateway.handle(&db, &HttpRequest::get("/query?table=sps").unwrap(), &ops);
        gateway.handle(&db, &HttpRequest::get("/no-such").unwrap(), &ops);
        let r = gateway.handle(&db, &HttpRequest::get("/metrics").unwrap(), &ops);
        assert_eq!(r.status, 200);
        assert!(r.content_type.starts_with("text/plain"));
        let body = r.body_text();
        assert!(body.contains("spotlake_store_records_submitted_total"));
        assert!(
            body.contains("spotlake_http_requests_total{path=\"/query\",status=\"200\"} 1"),
            "{body}"
        );
        assert!(body.contains("spotlake_http_requests_total{path=\"other\",status=\"404\"} 1"));
        assert!(body.contains("spotlake_http_response_bytes_bucket{path=\"/query\""));
        // Exactly one HELP line per family — no duplicates after merging.
        let helps: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("# HELP spotlake_store_queries_total"))
            .collect();
        assert_eq!(helps.len(), 1);
    }

    #[test]
    fn stats_carries_collection_totals_when_lent() {
        use spotlake_collector::{CollectStats, RoundHealth};
        let db = archive();
        let gateway = Gateway::new();
        let collect = CollectStats {
            rounds: 7,
            records_written: 123,
            ..CollectStats::default()
        };
        let last_round = RoundHealth {
            tick: 42,
            ..RoundHealth::default()
        };
        let ops = OpsContext {
            collect: Some(&collect),
            last_round: Some(&last_round),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/stats").unwrap(), &ops);
        let body = r.body_text();
        assert!(body.contains("\"collection\""));
        assert!(body.contains("\"rounds\":7"));
        assert!(body.contains("\"records_written\":123"));
        assert!(body.contains("\"last_round\""));
        assert!(body.contains("\"tick\":42"));
        // Bare ArchiveService keeps the old shape.
        let bare = get(&db, "/stats").body_text();
        assert!(!bare.contains("\"collection\""));
        assert!(bare.contains("total_points"));
    }

    #[test]
    fn explain_returns_plan_instead_of_rows() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        let req = HttpRequest::get("/query?table=sps&instance_type=m5.large&explain=1").unwrap();
        let r = gateway.handle(&db, &req, &ops);
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/json");
        let body = r.body_text();
        assert!(body.contains("\"explain\""), "{body}");
        assert!(
            !body.contains("\"rows\":["),
            "explain must replace rows: {body}"
        );
        assert!(body.contains("\"op\":\"query\""));
        assert!(body.contains("\"table\":\"sps\""));
        assert!(body.contains("\"stage\":\"prune\""));
        assert!(body.contains("\"stage\":\"scan\""));
        assert!(body.contains("\"series_scanned\":1"), "{body}");
        assert!(body.contains("\"series_pruned\":1"), "{body}");
        assert!(body.contains("\"rows_decoded\":5"), "{body}");
        assert!(body.contains("\"cost\":"));
        // `explain=true` works too; other values mean rows.
        let r = gateway.handle(
            &db,
            &HttpRequest::get("/query?table=sps&explain=true").unwrap(),
            &ops,
        );
        assert!(r.body_text().contains("\"explain\""));
        let r = gateway.handle(
            &db,
            &HttpRequest::get("/query?table=sps&explain=0").unwrap(),
            &ops,
        );
        assert!(r.body_text().contains("\"rows\""));
    }

    #[test]
    fn explain_cost_matches_query_cost_histogram_sum() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        let req = HttpRequest::get("/query?table=sps&instance_type=m5.large&explain=1").unwrap();
        let body = gateway.handle(&db, &req, &ops).body_text();
        let cost: f64 = body
            .split("\"cost\":")
            .nth(1)
            .and_then(|s| s.split(['}', ',']).next())
            .and_then(|s| s.parse().ok())
            .expect("explain body carries a numeric cost");
        let metrics = gateway
            .handle(&db, &HttpRequest::get("/metrics").unwrap(), &ops)
            .body_text();
        let sum_line = metrics
            .lines()
            .find(|l| l.starts_with("spotlake_query_cost_sum{op=\"query\",table=\"sps\"}"))
            .expect("query cost family rendered");
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(sum, cost, "one query: histogram sum equals EXPLAIN cost");
    }

    #[test]
    fn flight_recorder_surfaces_queries_in_cost_order() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        // A broad scan costs more than a pruned one.
        gateway.handle(
            &db,
            &HttpRequest::get("/query?table=sps&instance_type=m5.large").unwrap(),
            &ops,
        );
        gateway.handle(&db, &HttpRequest::get("/query?table=sps").unwrap(), &ops);
        gateway.handle(
            &db,
            &HttpRequest::get("/latest?table=advisor").unwrap(),
            &ops,
        );
        let r = gateway.handle(&db, &HttpRequest::get("/debug/queries").unwrap(), &ops);
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/json");
        let body = r.body_text();
        assert!(body.contains("\"observed\":3"), "{body}");
        let entries = gateway.flight().snapshot();
        assert_eq!(entries.len(), 3);
        for pair in entries.windows(2) {
            assert!(pair[0].cost >= pair[1].cost, "sorted by cost desc");
        }
        assert_eq!(entries[0].query, "/query?table=sps");
        // The journal holds one root span per query plus stage children.
        let traces = gateway.query_trace_text();
        assert_eq!(
            traces
                .lines()
                .filter(|l| l.contains("\"name\":\"query\""))
                .count(),
            3
        );
        assert!(traces.contains("\"name\":\"scan\""));
        let dump = gateway.handle(&db, &HttpRequest::get("/debug/traces").unwrap(), &ops);
        assert_eq!(dump.content_type, "text/plain");
        assert!(dump.body_text().contains("spotlake-trace"));
    }

    #[test]
    fn errors_and_explain_do_not_pollute_flight_recorder() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        // Store error and late parameter error: no flight entries.
        gateway.handle(&db, &HttpRequest::get("/query?table=nope").unwrap(), &ops);
        gateway.handle(
            &db,
            &HttpRequest::get("/query?table=sps&format=xml").unwrap(),
            &ops,
        );
        assert_eq!(gateway.flight().observed(), 0);
        // An EXPLAIN run still records: it executed the scan.
        gateway.handle(
            &db,
            &HttpRequest::get("/query?table=sps&explain=1").unwrap(),
            &ops,
        );
        assert_eq!(gateway.flight().observed(), 1);
    }

    #[test]
    fn stats_reports_quantiles_and_slow_queries() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        gateway.handle(&db, &HttpRequest::get("/query?table=sps").unwrap(), &ops);
        let body = gateway
            .handle(&db, &HttpRequest::get("/stats").unwrap(), &ops)
            .body_text();
        assert!(body.contains("\"quantiles\""), "{body}");
        assert!(body.contains("\"spotlake_query_cost\""), "{body}");
        assert!(body.contains("\"p50\""), "{body}");
        assert!(body.contains("\"p99\""), "{body}");
        assert!(body.contains("\"slow_queries\""), "{body}");
        assert!(body.contains("\"query\":\"/query?table=sps\""), "{body}");
    }

    #[test]
    fn quality_without_collector_is_empty_but_well_formed() {
        let db = archive();
        let r = get(&db, "/quality");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/json");
        assert_eq!(r.body_text(), "{\"datasets\":[],\"tick\":0}");
    }

    #[test]
    fn content_types_per_endpoint() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        let ct = |path: &str| {
            gateway
                .handle(&db, &HttpRequest::get(path).unwrap(), &ops)
                .content_type
        };
        assert_eq!(ct("/metrics"), "text/plain; version=0.0.4");
        assert_eq!(ct("/debug/traces"), "text/plain");
        assert_eq!(ct("/query?table=sps"), "application/json");
        assert_eq!(ct("/query?table=sps&format=csv"), "text/csv");
        assert_eq!(ct("/health"), "application/json");
        assert_eq!(ct("/"), "text/html");
    }

    #[test]
    fn custom_table_requires_explicit_measure() {
        let mut db = archive();
        db.create_table("mc_price", TableOptions::default())
            .unwrap();
        db.write("mc_price", &[Record::new(0, "spot_price", 0.1)])
            .unwrap();
        // No default measure for a custom table: explicit 400, not an
        // empty 200.
        assert_eq!(get(&db, "/query?table=mc_price").status, 400);
        let ok = get(&db, "/query?table=mc_price&measure=spot_price");
        assert_eq!(ok.status, 200);
        assert!(ok.body_text().contains(r#""value":0.1"#));
    }
}
