//! The gateway router and the "Lambda" handlers.

use crate::csv::rows_to_csv;
use crate::http::{HttpRequest, HttpResponse};
use crate::json::Json;
use crate::ops::OpsContext;
use spotlake_obs::{Readiness, Registry};
use spotlake_timestream::{Aggregate, Database, Query, Row, TsError};

/// Default measure per well-known archive table; unknown tables must name
/// their measure explicitly (a wrong silent default would return an empty
/// result instead of an error).
fn default_measure(table: &str) -> Option<&'static str> {
    match table {
        "advisor" => Some("if_score"),
        "price" => Some("spot_price"),
        "sps" => Some("sps"),
        _ => None,
    }
}

/// Dimension keys a query may filter on.
const FILTER_KEYS: [&str; 3] = ["instance_type", "region", "az"];

/// Maximum rows a single response returns without an explicit `limit`.
const DEFAULT_LIMIT: usize = 10_000;

/// The static front-end page (served "from object storage" in the paper's
/// architecture).
const INDEX_HTML: &str = "<!doctype html>\n<html><head><title>SpotLake</title></head>\n<body>\n<h1>SpotLake — spot instance dataset archive</h1>\n<p>Query the archive with <code>/query?table=sps&amp;instance_type=m5.large&amp;region=us-east-1</code>.\nEndpoints: /query /latest /at /window /correlate /stats /tables /health /metrics.</p>\n</body></html>\n";

/// Known endpoint paths, used to bound the cardinality of the gateway's
/// per-endpoint metrics (unknown paths are all labelled `other`).
const ENDPOINTS: [&str; 10] = [
    "/",
    "/health",
    "/metrics",
    "/tables",
    "/stats",
    "/correlate",
    "/query",
    "/latest",
    "/at",
    "/window",
];

/// The stateful gateway: routes requests like [`ArchiveService`] and
/// additionally owns the `spotlake_http_*` registry of per-endpoint
/// request counters and size histograms, serves `/metrics` merged across
/// every layer's registry, and answers `/health` from real readiness
/// instead of a constant.
#[derive(Debug, Clone, Default)]
pub struct Gateway {
    http: Registry,
}

impl Gateway {
    /// Creates a gateway with an empty request registry.
    pub fn new() -> Self {
        Gateway::default()
    }

    /// The gateway's own registry (`spotlake_http_*` families).
    pub fn http_metrics(&self) -> &Registry {
        &self.http
    }

    /// Routes a request, recording it in the gateway's registry.
    ///
    /// Response *size* stands in for latency in the histogram: handler
    /// cost in this in-process service is dominated by rows serialised,
    /// and wall-clock timing would break the byte-identical-metrics
    /// contract.
    pub fn handle(&self, db: &Database, request: &HttpRequest, ops: &OpsContext) -> HttpResponse {
        let response = route(self, db, request, ops);
        let path = match request.path() {
            "/index.html" => "/",
            p if ENDPOINTS.contains(&p) => p,
            _ => "other",
        };
        let status = response.status.to_string();
        self.http.counter_add(
            "spotlake_http_requests_total",
            "Requests served per endpoint and status.",
            &[("path", path), ("status", &status)],
            1,
        );
        self.http.histogram_record(
            "spotlake_http_response_bytes",
            "Response body size per endpoint (deterministic latency proxy).",
            &[("path", path)],
            response.body.len() as f64,
        );
        response
    }

    /// `/health`: aggregates the store's own readiness with whatever the
    /// operator lent through [`OpsContext::health`]. Degraded states still
    /// answer 200 (the archive serves what it has); only `unhealthy`
    /// returns 503.
    fn health(db: &Database, ops: &OpsContext) -> HttpResponse {
        let tables = db.table_names().len();
        let mut components = vec![(
            "store".to_owned(),
            Readiness::Ready,
            format!("{tables} tables, {} points", db.point_count()),
        )];
        if let Some(report) = ops.health {
            for c in &report.components {
                components.push((c.name.clone(), c.readiness, c.detail.clone()));
            }
        }
        let overall = components
            .iter()
            .map(|(_, r, _)| *r)
            .max()
            .unwrap_or(Readiness::Ready);
        let items: Vec<Json> = components
            .into_iter()
            .map(|(name, readiness, detail)| {
                Json::object([
                    ("name", Json::from(name.as_str())),
                    ("status", Json::from(readiness.as_str())),
                    ("detail", Json::from(detail.as_str())),
                ])
            })
            .collect();
        let body = Json::object([
            ("status", Json::from(overall.as_str())),
            ("components", Json::Array(items)),
        ])
        .render();
        match overall {
            Readiness::Unhealthy => HttpResponse {
                status: 503,
                content_type: "application/json",
                body: body.into(),
            },
            _ => HttpResponse::json(body),
        }
    }

    /// `/metrics`: one Prometheus text document merged across the store's
    /// registry, the gateway's own, and everything lent via
    /// [`OpsContext::registries`].
    fn metrics(&self, db: &Database, ops: &OpsContext) -> HttpResponse {
        let mut registries = vec![db.metrics(), &self.http];
        registries.extend(ops.registries.iter().copied());
        HttpResponse::text(Registry::render_merged(registries))
    }
}

/// The archive web service: a stateless router over a
/// [`Database`].
///
/// Kept for callers that only have an archive: routes identically to
/// [`Gateway`] with an empty [`OpsContext`], but records no request
/// metrics. `/health` still reports the store's real state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArchiveService;

impl ArchiveService {
    /// Routes a request to its handler.
    pub fn handle(db: &Database, request: &HttpRequest) -> HttpResponse {
        route(&Gateway::new(), db, request, &OpsContext::none())
    }

    fn tables(db: &Database) -> HttpResponse {
        let names: Vec<Json> = db.table_names().into_iter().map(Json::from).collect();
        HttpResponse::json(Json::object([("tables", Json::Array(names))]).render())
    }

    /// Builds the timestream query from request parameters. Returns the
    /// table name and query.
    fn build_query(db: &Database, request: &HttpRequest) -> Result<(String, Query), HttpResponse> {
        let table = request
            .param("table")
            .ok_or_else(|| HttpResponse::error(400, "missing required parameter: table"))?
            .to_owned();
        let measure = match request.param("measure").or_else(|| default_measure(&table)) {
            Some(m) => m.to_owned(),
            None => {
                // Unknown table -> 404; known-but-custom table -> ask for
                // an explicit measure instead of silently matching nothing.
                return Err(match db.table(&table) {
                    Err(e) => HttpResponse::error(404, &e.to_string()),
                    Ok(_) => HttpResponse::error(
                        400,
                        &format!("table {table:?} has no default measure; pass ?measure="),
                    ),
                });
            }
        };
        let mut q = Query::measure(measure);
        for key in FILTER_KEYS {
            if let Some(v) = request.param(key) {
                q = q.filter(key, v);
            }
        }
        let from = match request.param("from") {
            Some(s) => s
                .parse()
                .map_err(|_| HttpResponse::error(400, "from must be an integer timestamp"))?,
            None => 0,
        };
        let to = match request.param("to") {
            Some(s) => s
                .parse()
                .map_err(|_| HttpResponse::error(400, "to must be an integer timestamp"))?,
            None => u64::MAX,
        };
        Ok((table, q.between(from, to)))
    }

    fn respond_rows(request: &HttpRequest, mut rows: Vec<Row>) -> HttpResponse {
        let limit = match request.param("limit") {
            Some(s) => match s.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return HttpResponse::error(400, "limit must be an integer"),
            },
            None => DEFAULT_LIMIT,
        };
        let truncated = rows.len() > limit;
        rows.truncate(limit);
        match request.param("format") {
            Some("csv") => HttpResponse::csv(rows_to_csv(&rows)),
            Some("json") | None => {
                let items: Vec<Json> = rows.iter().map(row_to_json).collect();
                HttpResponse::json(
                    Json::object([
                        ("rows", Json::Array(items)),
                        ("truncated", Json::from(truncated)),
                    ])
                    .render(),
                )
            }
            Some(other) => HttpResponse::error(400, &format!("unknown format: {other} (json|csv)")),
        }
    }

    fn query(db: &Database, request: &HttpRequest) -> HttpResponse {
        let (table, q) = match Self::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        match db.query(&table, &q) {
            Ok(rows) => Self::respond_rows(request, rows),
            Err(e) => store_error(e),
        }
    }

    fn latest(db: &Database, request: &HttpRequest) -> HttpResponse {
        let (table, q) = match Self::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        match db.latest(&table, &q) {
            Ok(rows) => Self::respond_rows(request, rows),
            Err(e) => store_error(e),
        }
    }

    fn at(db: &Database, request: &HttpRequest) -> HttpResponse {
        let (table, q) = match Self::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let at = match request.param("timestamp").map(str::parse) {
            Some(Ok(t)) => t,
            Some(Err(_)) => return HttpResponse::error(400, "timestamp must be an integer"),
            None => return HttpResponse::error(400, "missing required parameter: timestamp"),
        };
        match db.value_at(&table, &q, at) {
            Ok(rows) => Self::respond_rows(request, rows),
            Err(e) => store_error(e),
        }
    }

    fn window(db: &Database, request: &HttpRequest) -> HttpResponse {
        let (table, q) = match Self::build_query(db, request) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let window = match request.param("window").map(str::parse) {
            Some(Ok(w)) if w > 0 => w,
            Some(_) => return HttpResponse::error(400, "window must be a positive integer"),
            None => 86_400,
        };
        let agg = match request.param("agg").unwrap_or("mean") {
            "mean" => Aggregate::Mean,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "last" => Aggregate::Last,
            other => {
                return HttpResponse::error(
                    400,
                    &format!("unknown agg: {other} (mean|min|max|count|sum|last)"),
                )
            }
        };
        match db.query_window(&table, &q, window, agg) {
            Ok(rows) => {
                let items: Vec<Json> = rows
                    .iter()
                    .map(|w| {
                        Json::object([
                            ("window_start", Json::from(w.window_start)),
                            ("value", Json::from(w.value)),
                            ("count", Json::from(w.count as u64)),
                        ])
                    })
                    .collect();
                HttpResponse::json(Json::object([("windows", Json::Array(items))]).render())
            }
            Err(e) => store_error(e),
        }
    }
}

/// The router shared by [`Gateway::handle`] and [`ArchiveService::handle`].
fn route(
    gateway: &Gateway,
    db: &Database,
    request: &HttpRequest,
    ops: &OpsContext,
) -> HttpResponse {
    match request.path() {
        "/" | "/index.html" => HttpResponse::html(INDEX_HTML),
        "/health" => Gateway::health(db, ops),
        "/metrics" => gateway.metrics(db, ops),
        "/tables" => ArchiveService::tables(db),
        "/stats" => crate::insights::stats(db, ops),
        "/correlate" => crate::insights::correlate(db, request),
        "/query" => ArchiveService::query(db, request),
        "/latest" => ArchiveService::latest(db, request),
        "/at" => ArchiveService::at(db, request),
        "/window" => ArchiveService::window(db, request),
        other => HttpResponse::error(404, &format!("no such endpoint: {other}")),
    }
}

fn row_to_json(row: &Row) -> Json {
    let dims = Json::Object(
        row.dimensions
            .iter()
            .map(|(k, v)| (k.clone(), Json::string(v)))
            .collect(),
    );
    Json::object([
        ("time", Json::from(row.time)),
        ("value", Json::from(row.value)),
        ("dimensions", dims),
    ])
}

fn store_error(e: TsError) -> HttpResponse {
    match e {
        TsError::NoSuchTable(_) => HttpResponse::error(404, &e.to_string()),
        other => HttpResponse::error(500, &other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_timestream::{Record, TableOptions};

    fn archive() -> Database {
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        db.create_table("advisor", TableOptions::default()).unwrap();
        for t in 0..5u64 {
            db.write(
                "sps",
                &[
                    Record::new(t * 600, "sps", 3.0 - (t % 3) as f64)
                        .dimension("instance_type", "m5.large")
                        .dimension("region", "us-east-1")
                        .dimension("az", "us-east-1a"),
                    Record::new(t * 600, "sps", 1.0)
                        .dimension("instance_type", "p3.2xlarge")
                        .dimension("region", "us-east-1")
                        .dimension("az", "us-east-1a"),
                ],
            )
            .unwrap();
        }
        db.write(
            "advisor",
            &[Record::new(0, "if_score", 2.5)
                .dimension("instance_type", "m5.large")
                .dimension("region", "us-east-1")],
        )
        .unwrap();
        db
    }

    fn get(db: &Database, path: &str) -> HttpResponse {
        ArchiveService::handle(db, &HttpRequest::get(path).unwrap())
    }

    #[test]
    fn health_tables_index() {
        let db = archive();
        assert_eq!(get(&db, "/health").status, 200);
        let tables = get(&db, "/tables");
        assert!(tables.body_text().contains("sps"));
        assert!(tables.body_text().contains("advisor"));
        let index = get(&db, "/");
        assert_eq!(index.content_type, "text/html");
        assert_eq!(get(&db, "/nope").status, 404);
    }

    #[test]
    fn query_filters_and_formats() {
        let db = archive();
        let r = get(&db, "/query?table=sps&instance_type=m5.large");
        assert_eq!(r.status, 200);
        let body = r.body_text();
        assert!(body.contains("\"rows\""));
        assert!(body.contains("m5.large"));
        assert!(!body.contains("p3.2xlarge"));

        let csv = get(&db, "/query?table=sps&instance_type=m5.large&format=csv");
        assert_eq!(csv.content_type, "text/csv");
        assert!(csv.body_text().starts_with("time,value"));

        let bad = get(&db, "/query?table=sps&format=xml");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn query_time_range_and_limit() {
        let db = archive();
        let r = get(
            &db,
            "/query?table=sps&from=600&to=1200&instance_type=m5.large",
        );
        let body = r.body_text();
        assert!(body.contains("\"time\":600"));
        assert!(body.contains("\"time\":1200"));
        assert!(!body.contains("\"time\":1800"));

        let limited = get(&db, "/query?table=sps&limit=1");
        assert!(limited.body_text().contains("\"truncated\":true"));
        let bad = get(&db, "/query?table=sps&limit=x");
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn latest_and_at() {
        let db = archive();
        let r = get(&db, "/latest?table=sps&instance_type=m5.large");
        assert!(r.body_text().contains("\"time\":2400"));

        let r = get(&db, "/at?table=sps&timestamp=700&instance_type=m5.large");
        assert!(r.body_text().contains("\"time\":600"));
        assert_eq!(get(&db, "/at?table=sps").status, 400);
    }

    #[test]
    fn window_aggregation() {
        let db = archive();
        let r = get(
            &db,
            "/window?table=sps&window=1200&agg=count&instance_type=m5.large",
        );
        let body = r.body_text();
        assert!(body.contains("\"windows\""));
        assert!(body.contains("\"count\":2"));
        assert_eq!(get(&db, "/window?table=sps&agg=median").status, 400);
        assert_eq!(get(&db, "/window?table=sps&window=0").status, 400);
    }

    #[test]
    fn advisor_default_measure() {
        let db = archive();
        let r = get(&db, "/query?table=advisor");
        assert!(r.body_text().contains("\"value\":2.5"));
    }

    #[test]
    fn missing_table_is_404() {
        let db = archive();
        assert_eq!(get(&db, "/query?table=nope").status, 404);
        assert_eq!(get(&db, "/query").status, 400);
    }

    #[test]
    fn health_reports_store_and_lent_components() {
        use spotlake_obs::{HealthReport, Readiness};
        let db = archive();
        // Bare archive: store only, ok.
        let r = get(&db, "/health");
        assert_eq!(r.status, 200);
        let body = r.body_text();
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"name\":\"store\""));
        assert!(body.contains("2 tables"));

        // A degraded collector degrades the body but still answers 200.
        let gateway = Gateway::new();
        let mut report = HealthReport::new();
        report.push("collector/sps", Readiness::Degraded, "breaker open");
        let ops = OpsContext {
            health: Some(&report),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/health").unwrap(), &ops);
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains("\"status\":\"degraded\""));
        assert!(r.body_text().contains("breaker open"));

        // Unhealthy flips to 503.
        report.push("collector/price", Readiness::Unhealthy, "all failed");
        let ops = OpsContext {
            health: Some(&report),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/health").unwrap(), &ops);
        assert_eq!(r.status, 503);
        assert!(r.body_text().contains("\"status\":\"unhealthy\""));
    }

    #[test]
    fn metrics_merges_store_and_http_families() {
        let db = archive();
        let gateway = Gateway::new();
        let ops = OpsContext::none();
        // Generate some traffic first so http families exist.
        gateway.handle(&db, &HttpRequest::get("/query?table=sps").unwrap(), &ops);
        gateway.handle(&db, &HttpRequest::get("/no-such").unwrap(), &ops);
        let r = gateway.handle(&db, &HttpRequest::get("/metrics").unwrap(), &ops);
        assert_eq!(r.status, 200);
        assert!(r.content_type.starts_with("text/plain"));
        let body = r.body_text();
        assert!(body.contains("spotlake_store_records_submitted_total"));
        assert!(
            body.contains("spotlake_http_requests_total{path=\"/query\",status=\"200\"} 1"),
            "{body}"
        );
        assert!(body.contains("spotlake_http_requests_total{path=\"other\",status=\"404\"} 1"));
        assert!(body.contains("spotlake_http_response_bytes_bucket{path=\"/query\""));
        // Exactly one HELP line per family — no duplicates after merging.
        let helps: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("# HELP spotlake_store_queries_total"))
            .collect();
        assert_eq!(helps.len(), 1);
    }

    #[test]
    fn stats_carries_collection_totals_when_lent() {
        use spotlake_collector::{CollectStats, RoundHealth};
        let db = archive();
        let gateway = Gateway::new();
        let collect = CollectStats {
            rounds: 7,
            records_written: 123,
            ..CollectStats::default()
        };
        let last_round = RoundHealth {
            tick: 42,
            ..RoundHealth::default()
        };
        let ops = OpsContext {
            collect: Some(&collect),
            last_round: Some(&last_round),
            ..OpsContext::none()
        };
        let r = gateway.handle(&db, &HttpRequest::get("/stats").unwrap(), &ops);
        let body = r.body_text();
        assert!(body.contains("\"collection\""));
        assert!(body.contains("\"rounds\":7"));
        assert!(body.contains("\"records_written\":123"));
        assert!(body.contains("\"last_round\""));
        assert!(body.contains("\"tick\":42"));
        // Bare ArchiveService keeps the old shape.
        let bare = get(&db, "/stats").body_text();
        assert!(!bare.contains("\"collection\""));
        assert!(bare.contains("total_points"));
    }

    #[test]
    fn custom_table_requires_explicit_measure() {
        let mut db = archive();
        db.create_table("mc_price", TableOptions::default())
            .unwrap();
        db.write("mc_price", &[Record::new(0, "spot_price", 0.1)])
            .unwrap();
        // No default measure for a custom table: explicit 400, not an
        // empty 200.
        assert_eq!(get(&db, "/query?table=mc_price").status, 400);
        let ok = get(&db, "/query?table=mc_price&measure=spot_price");
        assert_eq!(ok.status, 200);
        assert!(ok.body_text().contains(r#""value":0.1"#));
    }
}
