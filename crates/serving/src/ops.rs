//! Operational context handed to the gateway by whoever wires it up.
//!
//! The gateway is a stateless router over a [`Database`]; everything else
//! it can report — collector readiness, collection totals, metric
//! registries to merge into `/metrics` — is *lent* to it per request
//! through an [`OpsContext`]. The context borrows rather than owns so the
//! collector keeps sole ownership of its state, and a bare archive (no
//! collector at all, e.g. one loaded from disk) simply passes the default
//! empty context.
//!
//! [`Database`]: spotlake_timestream::Database

use spotlake_collector::{CollectStats, RoundHealth};
use spotlake_obs::{HealthReport, QualityReport, Registry};
use spotlake_timestream::{RecoveryReport, ShardSetHealth};

/// Borrowed operational state for one request.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpsContext<'a> {
    /// Registries to merge into `/metrics`, in addition to the archive's
    /// own (`spotlake_store_*`) and the gateway's (`spotlake_http_*`).
    pub registries: &'a [&'a Registry],
    /// Collector readiness, surfaced through `/health`.
    pub health: Option<&'a HealthReport>,
    /// Running collection totals, surfaced through `/stats`.
    pub collect: Option<&'a CollectStats>,
    /// The most recent round's health record, surfaced through `/stats`.
    pub last_round: Option<&'a RoundHealth>,
    /// Simulation tick of the request (0 when no clock is wired) — stamped
    /// into query traces and flight-recorder entries.
    pub tick: u64,
    /// Wire-level request id assigned by the serving listener at accept
    /// (0 for in-process requests) — stamped into query traces and
    /// flight-recorder entries so they join to the server's request
    /// timeline and the `x-spotlake-request-id` response header.
    pub request_id: u64,
    /// Archive data-quality report, surfaced through `/quality`.
    pub quality: Option<&'a QualityReport>,
    /// What startup recovery replayed, when the archive runs durably —
    /// surfaced through `/stats`.
    pub recovery: Option<&'a RecoveryReport>,
    /// Per-shard health when the archive runs sharded — drives the
    /// degraded-query annotation on data endpoints and the shard
    /// sections of `/quality` and `/stats`. Queries that touch a
    /// quarantined or failed shard still answer from the merged view,
    /// flagged rather than refused.
    pub shards: Option<&'a ShardSetHealth>,
}

impl OpsContext<'_> {
    /// An empty context: archive only, no collector attached.
    pub fn none() -> Self {
        OpsContext::default()
    }
}
