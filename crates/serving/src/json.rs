//! A minimal JSON encoder.
//!
//! The workspace's dependency policy has no JSON crate, and the serving
//! layer only needs to *emit* JSON, so this module provides a small value
//! tree and a spec-compliant encoder (string escaping, finite-number
//! handling).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Creates an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Creates a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Encodes the value to a JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Number(3.0).render(), "3");
        assert_eq!(Json::Number(3.5).render(), "3.5");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::string("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            Json::string("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compound() {
        let v = Json::object([
            ("b", Json::Array(vec![Json::from(1.0), Json::Null])),
            ("a", Json::from("x")),
        ]);
        // Keys are ordered deterministically.
        assert_eq!(v.render(), "{\"a\":\"x\",\"b\":[1,null]}");
    }

    #[test]
    fn conversions() {
        assert_eq!(Json::from(2u64).render(), "2");
        assert_eq!(Json::from(false).render(), "false");
        assert_eq!(Json::from("s").render(), "\"s\"");
    }
}
