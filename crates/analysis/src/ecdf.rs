//! Empirical cumulative distribution functions.

/// An empirical CDF over a fixed sample set.
///
/// # Example
///
/// ```
/// use spotlake_analysis::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from samples. Non-finite samples are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of samples ≤ `x`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn eval(&self, x: f64) -> f64 {
        assert!(!self.is_empty(), "ECDF of an empty sample set");
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0..=1.0`), by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of an empty sample set");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The median.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Renders the CDF as `(x, F(x))` step points at each distinct sample —
    /// the series a plotting tool would draw.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Evaluates the CDF at caller-chosen grid points (for tabular output).
    pub fn sample_at(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.eval(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_and_quantiles() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert_eq!(cdf.median(), 2.0);
    }

    #[test]
    fn drops_non_finite() {
        let cdf = Ecdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_deduplicate_x() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        let pts = cdf.points();
        assert_eq!(pts, vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_eval_panics() {
        Ecdf::new(vec![]).eval(1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let cdf = Ecdf::new(samples);
            let pts = cdf.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 <= w[1].1);
            }
            prop_assert_eq!(pts.last().unwrap().1, 1.0);
        }

        #[test]
        fn quantile_inverts_eval(samples in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.01f64..1.0) {
            let cdf = Ecdf::new(samples);
            let x = cdf.quantile(q);
            // F(quantile(q)) >= q by definition of nearest rank.
            prop_assert!(cdf.eval(x) + 1e-12 >= q);
        }
    }
}
