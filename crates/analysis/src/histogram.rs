//! Fixed-bin histograms (Figure 9, Table 2).

/// A histogram over explicit bin centers: each sample is counted into the
/// nearest center. Used for the discrete score domains of the paper (score
/// values 1.0–3.0 in 0.5 steps, score differences 0.0–2.0 in 0.5 steps).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    centers: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given bin centers.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty or not strictly increasing.
    pub fn with_centers(centers: Vec<f64>) -> Self {
        assert!(!centers.is_empty(), "histogram needs at least one bin");
        assert!(
            centers.windows(2).all(|w| w[0] < w[1]),
            "bin centers must be strictly increasing"
        );
        let counts = vec![0; centers.len()];
        Histogram { centers, counts }
    }

    /// The score-value histogram of Table 2: centers 1.0, 1.5, 2.0, 2.5,
    /// 3.0.
    pub fn score_bins() -> Self {
        Histogram::with_centers(vec![1.0, 1.5, 2.0, 2.5, 3.0])
    }

    /// The score-difference histogram of Figure 9: centers 0.0–2.0 in 0.5
    /// steps.
    pub fn difference_bins() -> Self {
        Histogram::with_centers(vec![0.0, 0.5, 1.0, 1.5, 2.0])
    }

    /// Adds one sample (counted into the nearest center; non-finite samples
    /// are ignored).
    pub fn add(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        let idx = self
            .centers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - sample).abs().total_cmp(&(*b - sample).abs()))
            .map(|(i, _)| i)
            .expect("centers are non-empty");
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = f64>) {
        for s in samples {
            self.add(s);
        }
    }

    /// The bin centers.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage share per bin (zeros when the histogram is empty).
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / total as f64)
            .collect()
    }

    /// `(center, share%)` pairs, ready for tabular output.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        self.centers.iter().copied().zip(self.shares()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_center_binning() {
        let mut h = Histogram::score_bins();
        h.extend([1.0, 1.2, 1.3, 2.9, 3.0, 3.4]);
        // 1.0,1.2 -> 1.0; 1.3 -> 1.5; 2.9,3.0,3.4 -> 3.0.
        assert_eq!(h.counts(), &[2, 1, 0, 0, 3]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn shares_sum_to_100() {
        let mut h = Histogram::difference_bins();
        h.extend([0.0, 0.5, 0.5, 2.0]);
        let shares = h.shares();
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(shares[1], 50.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::score_bins();
        assert_eq!(h.total(), 0);
        assert_eq!(h.shares(), vec![0.0; 5]);
    }

    #[test]
    fn ignores_non_finite() {
        let mut h = Histogram::score_bins();
        h.add(f64::NAN);
        h.add(f64::NEG_INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_centers() {
        Histogram::with_centers(vec![1.0, 1.0]);
    }

    #[test]
    fn rows_pair_centers_with_shares() {
        let mut h = Histogram::with_centers(vec![0.0, 1.0]);
        h.extend([0.0, 1.0, 1.0, 0.9]);
        assert_eq!(h.rows(), vec![(0.0, 25.0), (1.0, 75.0)]);
    }
}
