//! Pearson correlation and series alignment (Section 5.3).

/// The Pearson correlation coefficient of two equal-length sample slices,
/// exactly as defined in Section 5.3 of the paper:
///
/// ```text
/// R = Σ (xᵢ-x̄)(yᵢ-ȳ) / (√Σ(xᵢ-x̄)² · √Σ(yᵢ-ȳ)²)
/// ```
///
/// Returns `None` when the slices differ in length, hold fewer than two
/// points, or either side has zero variance (the coefficient is undefined —
/// this happens often with the sticky post-2017 spot price).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation: Pearson over the ranks, with average ranks
/// for ties. More robust than Pearson for the heavily discretized spot
/// scores; reported alongside Pearson as a robustness check on Figure 8.
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Resamples a change-event series as a step function at the given sample
/// times: each output is the latest value at or before the sample time.
/// Sample times strictly before the first event yield no output, so the
/// result may be shorter than `at`; both inputs must be sorted by time.
pub fn resample_step(series: &[(u64, f64)], at: &[u64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(at.len());
    let mut idx = 0usize;
    let mut current: Option<f64> = None;
    for &t in at {
        while idx < series.len() && series[idx].0 <= t {
            current = Some(series[idx].1);
            idx += 1;
        }
        if let Some(v) = current {
            out.push(v);
        }
    }
    out
}

/// Aligns two sorted series on the sample times of `x` (step-sampling `y`),
/// returning paired samples ready for [`pearson`]. Pairs before `y`'s first
/// event are dropped.
pub fn align_step(x: &[(u64, f64)], y: &[(u64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut idx = 0usize;
    let mut current: Option<f64> = None;
    for &(t, xv) in x {
        while idx < y.len() && y[idx].0 <= t {
            current = Some(y[idx].1);
            idx += 1;
        }
        if let Some(yv) = current {
            xs.push(xv);
            ys.push(yv);
        }
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        // Zero variance (constant series).
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn independent_data_near_zero() {
        // Deterministic pseudo-random independent-ish sequences via
        // avalanche-style mixing with two different keys.
        fn mix(i: u64, key: u64) -> f64 {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ key;
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            (x % 1000) as f64
        }
        let x: Vec<f64> = (0..1000).map(|i| mix(i, 0xA5A5_A5A5)).collect();
        let y: Vec<f64> = (0..1000).map(|i| mix(i, 0x5A5A_5A5A_0000)).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.15, "r = {r}");
    }

    #[test]
    fn resample_step_carries_last_value() {
        let series = [(10u64, 1.0), (30, 2.0)];
        let at = [0u64, 10, 20, 30, 40];
        // t=0 has no value yet; 10,20 -> 1.0; 30,40 -> 2.0.
        assert_eq!(resample_step(&series, &at), vec![1.0, 1.0, 2.0, 2.0]);
        assert!(resample_step(&[], &at).is_empty());
    }

    #[test]
    fn align_step_pairs() {
        let x = [(0u64, 3.0), (10, 3.0), (20, 2.0), (30, 3.0)];
        let y = [(5u64, 2.5), (25, 1.0)];
        let (xs, ys) = align_step(&x, &y);
        assert_eq!(xs, vec![3.0, 2.0, 3.0]);
        assert_eq!(ys, vec![2.5, 2.5, 1.0]);
    }

    #[test]
    fn spearman_handles_monotone_and_ties() {
        // Monotone but nonlinear: Spearman is exactly 1, Pearson is not.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
        // Ties get average ranks.
        assert_eq!(ranks(&[2.0, 1.0, 2.0]), vec![2.5, 1.0, 2.5]);
        // Constant input is undefined.
        assert_eq!(spearman(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    proptest! {
        #[test]
        fn spearman_bounded_and_symmetric(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..60)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = spearman(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
                prop_assert!((r - spearman(&y, &x).unwrap()).abs() < 1e-9);
            }
        }

        #[test]
        fn pearson_bounded(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..100)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn pearson_symmetric(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            match (pearson(&x, &y), pearson(&y, &x)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}
