//! Scalar summary statistics.

/// Arithmetic mean. `None` for empty input.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Sample standard deviation (n−1 denominator). `None` for fewer than two
/// samples.
pub fn stddev(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean(samples)?;
    let var = samples.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    Some(var.sqrt())
}

/// The `q`-quantile by nearest rank. `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// The median. `None` for empty input.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(median(&xs), Some(2.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert!((stddev(&xs).unwrap() - 1.2909944487).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(stddev(&[1.0]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }
}
