//! Inter-update intervals (Figure 10).

/// Extracts the elapsed times (in seconds) between *value changes* of a
/// time series. Consecutive equal values are treated as one level: only
/// transitions count as updates, matching Figure 10's "elapsed time between
/// update events".
///
/// The input must be sorted by time. Series with fewer than two distinct
/// levels yield an empty result.
pub fn update_intervals(series: &[(u64, f64)]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut last_change: Option<(u64, f64)> = None;
    for &(t, v) in series {
        match last_change {
            None => last_change = Some((t, v)),
            Some((lt, lv)) => {
                if v != lv {
                    out.push(t - lt);
                    last_change = Some((t, v));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_changes() {
        let series = [
            (0u64, 3.0),
            (600, 3.0),
            (1200, 2.0), // change after 1200s
            (1800, 2.0),
            (2400, 3.0), // change after 1200s
        ];
        assert_eq!(update_intervals(&series), vec![1200, 1200]);
    }

    #[test]
    fn constant_series_has_no_updates() {
        let series = [(0u64, 1.0), (600, 1.0), (1200, 1.0)];
        assert!(update_intervals(&series).is_empty());
        assert!(update_intervals(&[]).is_empty());
        assert!(update_intervals(&[(0, 1.0)]).is_empty());
    }

    #[test]
    fn every_point_changes() {
        let series = [(0u64, 1.0), (10, 2.0), (30, 3.0)];
        assert_eq!(update_intervals(&series), vec![10, 20]);
    }
}
