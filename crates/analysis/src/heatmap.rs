//! Group-by-mean heatmaps (Figures 3 and 4).
//!
//! A [`Heatmap`] accumulates samples keyed by `(row, column)` and renders a
//! dense matrix of means, with `None` for never-observed cells — the
//! paper's "NA" cells for instance types unsupported in a region.

use std::collections::BTreeMap;

/// A mean-aggregating two-dimensional table with string-keyed rows and
/// columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Heatmap {
    cells: BTreeMap<(String, String), (f64, u64)>,
    rows: Vec<String>,
    cols: Vec<String>,
}

impl Heatmap {
    /// Creates an empty heatmap. Rows and columns appear in first-seen
    /// order unless pre-declared with [`Heatmap::declare_rows`] /
    /// [`Heatmap::declare_cols`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declares row order (e.g. the paper's family ordering: general,
    /// compute-, memory-, accelerated-, storage-optimized).
    pub fn declare_rows<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, rows: I) {
        for r in rows {
            let r = r.into();
            if !self.rows.contains(&r) {
                self.rows.push(r);
            }
        }
    }

    /// Pre-declares column order.
    pub fn declare_cols<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cols: I) {
        for c in cols {
            let c = c.into();
            if !self.cols.contains(&c) {
                self.cols.push(c);
            }
        }
    }

    /// Adds one sample to cell `(row, col)`.
    pub fn add(&mut self, row: &str, col: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        if !self.rows.iter().any(|r| r == row) {
            self.rows.push(row.to_owned());
        }
        if !self.cols.iter().any(|c| c == col) {
            self.cols.push(col.to_owned());
        }
        let cell = self
            .cells
            .entry((row.to_owned(), col.to_owned()))
            .or_insert((0.0, 0));
        cell.0 += value;
        cell.1 += 1;
    }

    /// Row labels in display order.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Column labels in display order.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// The mean of cell `(row, col)`, or `None` if never observed.
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        self.cells
            .get(&(row.to_owned(), col.to_owned()))
            .map(|&(sum, n)| sum / n as f64)
    }

    /// The dense matrix of means in declared order (`None` = NA).
    pub fn matrix(&self) -> Vec<Vec<Option<f64>>> {
        self.rows
            .iter()
            .map(|r| self.cols.iter().map(|c| self.cell(r, c)).collect())
            .collect()
    }

    /// Mean across an entire row, ignoring NA cells.
    pub fn row_mean(&self, row: &str) -> Option<f64> {
        let (sum, n) = self
            .cells
            .iter()
            .filter(|((r, _), _)| r == row)
            .fold((0.0, 0u64), |(s, n), (_, &(cs, cn))| (s + cs, n + cn));
        (n > 0).then(|| sum / n as f64)
    }

    /// Grand mean over all samples.
    pub fn grand_mean(&self) -> Option<f64> {
        let (sum, n) = self
            .cells
            .values()
            .fold((0.0, 0u64), |(s, n), &(cs, cn)| (s + cs, n + cn));
        (n > 0).then(|| sum / n as f64)
    }

    /// Renders the heatmap as an aligned text table with `NA` cells —
    /// what the figure binaries print.
    pub fn render(&self, value_width: usize) -> String {
        let row_w = self.rows.iter().map(String::len).max().unwrap_or(3).max(3);
        let mut out = String::new();
        out.push_str(&format!("{:row_w$}", ""));
        for c in &self.cols {
            out.push_str(&format!(" {c:>value_width$.value_width$}"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{r:row_w$}"));
            for c in &self.cols {
                match self.cell(r, c) {
                    Some(v) => out.push_str(&format!(" {v:>value_width$.2}")),
                    None => out.push_str(&format!(" {:>value_width$}", "NA")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_na_cells() {
        let mut h = Heatmap::new();
        h.add("P", "us-east-1", 1.0);
        h.add("P", "us-east-1", 2.0);
        h.add("M", "eu-west-1", 3.0);
        assert_eq!(h.cell("P", "us-east-1"), Some(1.5));
        assert_eq!(h.cell("P", "eu-west-1"), None);
        let m = h.matrix();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], Some(1.5));
        assert_eq!(m[0][1], None);
        assert_eq!(m[1][1], Some(3.0));
    }

    #[test]
    fn declared_order_wins() {
        let mut h = Heatmap::new();
        h.declare_rows(["T", "M", "P"]);
        h.add("P", "r1", 1.0);
        h.add("T", "r1", 2.0);
        assert_eq!(h.rows(), &["T", "M", "P"]);
        // Row M exists but has no samples.
        assert_eq!(h.row_mean("M"), None);
    }

    #[test]
    fn aggregate_means() {
        let mut h = Heatmap::new();
        h.add("A", "c1", 1.0);
        h.add("A", "c2", 3.0);
        h.add("B", "c1", 5.0);
        assert_eq!(h.row_mean("A"), Some(2.0));
        assert_eq!(h.grand_mean(), Some(3.0));
        assert_eq!(Heatmap::new().grand_mean(), None);
    }

    #[test]
    fn render_contains_na_and_values() {
        let mut h = Heatmap::new();
        h.declare_cols(["r1", "r2"]);
        h.add("fam", "r1", 2.5);
        let text = h.render(6);
        assert!(text.contains("2.50"));
        assert!(text.contains("NA"));
        assert!(text.contains("fam"));
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Heatmap::new();
        h.add("A", "c", f64::NAN);
        assert_eq!(h.cell("A", "c"), None);
    }
}
