//! Statistics toolkit for the spot dataset analysis of Section 5.
//!
//! Everything operates on plain `(time, value)` series and sample slices,
//! so the same code serves the archive (via `spotlake-timestream` rows),
//! the experiment harness, and the figure-regeneration binaries:
//!
//! * [`pearson`] — the Pearson correlation coefficient of Section 5.3 /
//!   Figure 8, plus step-function resampling to align series collected at
//!   different cadences.
//! * [`Ecdf`] — empirical CDFs (Figures 8, 10, 11).
//! * [`Histogram`] — fixed-bin histograms (Figure 9, Table 2).
//! * [`Heatmap`] — group-by-mean matrices with NA cells (Figures 3, 4).
//! * [`update_intervals`] — inter-update times of a change-event series
//!   (Figure 10).
//! * [`mean`] / [`median`] / [`quantile`] / [`stddev`] — scalar summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ecdf;
mod heatmap;
mod histogram;
mod pearson;
mod summary;
mod updates;

pub use ecdf::Ecdf;
pub use heatmap::Heatmap;
pub use histogram::Histogram;
pub use pearson::{align_step, pearson, resample_step, spearman};
pub use summary::{mean, median, quantile, stddev};
pub use updates::update_intervals;
