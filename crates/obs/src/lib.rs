//! Deterministic observability kernel for the SpotLake workspace.
//!
//! The paper's service runs unattended for months; its operators live off
//! telemetry, not post-mortem counters. This crate is the workspace's
//! shared observability substrate, built under one hard constraint: **a
//! replay under a fixed seed must produce bit-identical telemetry**. That
//! rules out wall clocks, randomized sampling, and hash-ordered output
//! anywhere in the kernel. Concretely:
//!
//! * [`Registry`] — counters, gauges, and log-linear-bucket histograms,
//!   addressed by `(family name, sorted label set)` and rendered in the
//!   Prometheus text exposition format. Storage is `BTreeMap`-backed, so
//!   the rendered text is a pure function of the recorded observations.
//! * [`TraceJournal`] — a structured journal of spans and events keyed on
//!   *simulation ticks*, rendered as JSON lines with sorted attribute
//!   keys.
//! * [`Clock`] — the only way instrumented components learn what time it
//!   is. Production wiring drives a [`ManualClock`] from the simulator's
//!   tick counter; tests inject whatever they like. Nothing in this
//!   crate (or its users' instrumentation) reads the wall clock.
//! * [`HealthReport`] — a neutral readiness model (ready / degraded /
//!   unhealthy per component) that lets the collector describe breaker
//!   and round state to the gateway without the gateway reverse-engineering
//!   collector internals.
//! * [`FlightRecorder`] — a fixed-size top-N of the most expensive
//!   queries, ranked by a deterministic cost proxy; backs the gateway's
//!   `/debug/queries` dump and `/stats` slow-query listing.
//! * [`RequestRecorder`] — the wire-level counterpart: per-request phase
//!   timelines (queue wait, parse, handle, write) retained top-N by
//!   total time, backing the server's `/debug/requests`. Offsets are
//!   measured by the caller and passed in — this crate stays clock-free.
//! * [`TelemetryRecorder`] — a fixed-capacity ring buffer of
//!   whole-registry samples (counters, gauges, histogram quantiles)
//!   stamped with caller-supplied timestamps, rendered as JSONL for the
//!   server's `/debug/telemetry` time series.
//! * [`QualityMonitor`] — archive data-quality tracking: per-(dataset ×
//!   key) coverage, staleness, and gap detection, exported as
//!   `spotlake_archive_*` gauges and the `/quality` report.
//! * [`SloTracker`] / [`BurnTracker`] — the deterministic SLO engine:
//!   declarative objectives ([`SloSet`]) evaluated over the telemetry
//!   sample stream with error-budget accounting and multi-window
//!   (fast/slow) burn-rate alerting, ok → warning → page. Verdicts are a
//!   pure function of the fed samples, so the live `/debug/slo` endpoint
//!   and the offline `spotlake slo-eval` replay agree byte-for-byte.
//!
//! Durations recorded here are denominated in deterministic units — ticks
//! or work units (API calls, rows, bytes) — never nanoseconds, which is
//! what makes the `/metrics` byte-identity contract testable.
//!
//! # Example
//!
//! ```
//! use spotlake_obs::{ManualClock, Clock, Registry, TraceJournal};
//!
//! let clock = ManualClock::new(3);
//! let registry = Registry::new();
//! registry.counter_add("demo_rounds_total", "Rounds executed.", &[], 1);
//! registry.histogram_record("demo_round_ops", "Ops per round.", &[("dataset", "sps")], 7.0);
//!
//! let mut journal = TraceJournal::new();
//! let span = journal.begin_span(clock.now(), "round");
//! journal.event(clock.now(), "dataset", &[("dataset", "sps".into())]);
//! journal.end_span(span, clock.now());
//!
//! assert!(registry.render().contains("demo_rounds_total 1"));
//! assert!(journal.render().contains("\"name\":\"round\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burn;
mod clock;
mod flight;
mod health;
mod journal;
mod lifecycle;
pub mod names;
mod quality;
mod registry;
mod slo;
mod telemetry;

pub use burn::{AlertState, AlertTransition, BurnPolicy, BurnTracker};
pub use clock::{Clock, ManualClock};
pub use flight::{FlightEntry, FlightRecorder, QueryCtx};
pub use health::{ComponentHealth, HealthReport, Readiness};
pub use journal::{JournalError, SpanId, TraceJournal, JOURNAL_SCHEMA, JOURNAL_VERSION};
pub use lifecycle::{PhaseSpan, RequestRecord, RequestRecorder, REQUEST_PHASES};
pub use quality::{DatasetQuality, KeyQuality, QualityMonitor, QualityReport};
pub use registry::{log_linear_buckets, HistogramSummary, MetricKind, Registry};
pub use slo::{ObjectiveVerdict, SloReport, SloSet, SloSignal, SloSpec, SloTracker};
pub use telemetry::{TelemetryRecorder, TelemetrySample};
