//! Archive data-quality monitoring: per-key coverage, staleness, and gap
//! detection for the collected datasets.
//!
//! The paper's archive is only as useful as it is *complete* — the authors
//! themselves report collection gaps and the workarounds they needed. This
//! module watches the write path: the collector reports every observed
//! (dataset × key) pair per round, the monitor tracks when each key was
//! last seen, counts rounds each key missed (gaps), and summarizes
//! coverage per dataset. Everything is keyed on simulation ticks and
//! stored in `BTreeMap`s, so reports and exported gauges are byte-stable
//! across same-seed runs.

use std::collections::BTreeMap;

use crate::Registry;

/// Per-key tracking state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KeyState {
    /// Tick of the first observation.
    first_tick: u64,
    /// Tick of the most recent observation.
    last_tick: u64,
    /// Total observations (one per round at most).
    observed: u64,
    /// Distinct gaps: runs of one or more missed rounds.
    gaps: u64,
    /// Total rounds missed across all gaps.
    missed: u64,
}

/// Data-quality state for one key in a [`DatasetQuality`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyQuality {
    /// The coverage key, e.g. `"m5.large:us-test-1a"`.
    pub key: String,
    /// Rounds in which the key was observed.
    pub observed: u64,
    /// Ticks since the key was last observed (0 when current).
    pub staleness: u64,
    /// Distinct gaps detected in the key's history.
    pub gaps: u64,
    /// Total rounds missed across all gaps.
    pub missed: u64,
}

/// Aggregated data-quality report for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetQuality {
    /// Dataset name (`sps`, `advisor`, `price`).
    pub dataset: String,
    /// Number of distinct keys ever observed.
    pub keys_tracked: u64,
    /// Keys not observed in the most recent round.
    pub keys_stale: u64,
    /// Total distinct gaps across keys.
    pub gaps: u64,
    /// Total missed rounds across keys.
    pub missed_rounds: u64,
    /// Minimum per-key coverage ratio (observed / expected rounds).
    pub min_coverage: f64,
    /// Maximum per-key staleness in ticks.
    pub max_staleness: u64,
    /// Worst keys: staleness descending, then gaps descending, then key
    /// ascending. At most [`QualityMonitor::WORST_KEYS`] entries.
    pub worst: Vec<KeyQuality>,
}

/// A point-in-time quality report over all datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Tick the report was taken at.
    pub tick: u64,
    /// Expected ticks between observations of a live key.
    pub interval: u64,
    /// Completed collection rounds.
    pub rounds: u64,
    /// Per-dataset summaries, sorted by dataset name.
    pub datasets: Vec<DatasetQuality>,
}

/// Tracks per-(dataset × key) observation coverage.
///
/// The collector calls [`QualityMonitor::observe`] for every record key it
/// successfully writes, [`QualityMonitor::observe_sweep`] when a sweep
/// semantically covers all known keys (the price collector only reports
/// *changes*, so a clean sweep refreshes every key it has ever seen), and
/// [`QualityMonitor::round_complete`] once per round.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    /// Expected ticks between observations of a live key.
    interval: u64,
    /// Tick of the last completed round.
    tick: u64,
    /// Completed rounds.
    rounds: u64,
    keys: BTreeMap<String, BTreeMap<String, KeyState>>,
}

impl QualityMonitor {
    /// Maximum worst-offender keys listed per dataset in a report.
    pub const WORST_KEYS: usize = 10;

    /// Creates a monitor expecting one observation per key every
    /// `interval` ticks.
    pub fn new(interval: u64) -> Self {
        QualityMonitor {
            interval: interval.max(1),
            tick: 0,
            rounds: 0,
            keys: BTreeMap::new(),
        }
    }

    /// Records that `key` in `dataset` was observed at `tick`. A second
    /// observation at the same tick is a no-op; a delta greater than the
    /// expected interval counts one gap and `delta / interval - 1` missed
    /// rounds.
    pub fn observe(&mut self, dataset: &str, key: &str, tick: u64) {
        let interval = self.interval;
        let state = self
            .keys
            .entry(dataset.to_owned())
            .or_default()
            .entry(key.to_owned())
            .or_insert(KeyState {
                first_tick: tick,
                last_tick: tick,
                observed: 0,
                gaps: 0,
                missed: 0,
            });
        if state.observed > 0 {
            if tick == state.last_tick {
                return; // Same-round duplicate (e.g. two measures per key).
            }
            let delta = tick.saturating_sub(state.last_tick);
            if delta > interval {
                state.gaps += 1;
                state.missed += delta / interval - 1;
            }
        }
        state.observed += 1;
        state.last_tick = tick;
    }

    /// Marks every key already known for `dataset` as observed at `tick` —
    /// for sweep-style collectors whose successful pass covers all keys
    /// even when it reports no changes.
    pub fn observe_sweep(&mut self, dataset: &str, tick: u64) {
        let interval = self.interval;
        if let Some(keys) = self.keys.get_mut(dataset) {
            for state in keys.values_mut() {
                if tick == state.last_tick {
                    continue;
                }
                let delta = tick.saturating_sub(state.last_tick);
                if delta > interval {
                    state.gaps += 1;
                    state.missed += delta / interval - 1;
                }
                state.observed += 1;
                state.last_tick = tick;
            }
        }
    }

    /// Advances the monitor to the end of a round at `tick`.
    pub fn round_complete(&mut self, tick: u64) {
        self.tick = self.tick.max(tick);
        self.rounds += 1;
    }

    /// Builds the current report: per-dataset aggregates plus the worst
    /// keys by staleness. A pure function of the observations — two
    /// same-seed runs produce identical reports.
    pub fn report(&self) -> QualityReport {
        let datasets = self
            .keys
            .iter()
            .map(|(dataset, keys)| {
                let mut worst: Vec<KeyQuality> = keys
                    .iter()
                    .map(|(key, s)| KeyQuality {
                        key: key.clone(),
                        observed: s.observed,
                        staleness: self.tick.saturating_sub(s.last_tick),
                        gaps: s.gaps,
                        missed: s.missed,
                    })
                    .collect();
                let keys_stale = worst.iter().filter(|k| k.staleness > 0).count() as u64;
                let gaps = worst.iter().map(|k| k.gaps).sum();
                let missed_rounds = worst.iter().map(|k| k.missed).sum();
                let max_staleness = worst.iter().map(|k| k.staleness).max().unwrap_or(0);
                let min_coverage = keys
                    .values()
                    .map(|s| {
                        // Rounds the key could have been observed in, from
                        // its first sighting through the current tick.
                        let span = self.tick.saturating_sub(s.first_tick) / self.interval + 1;
                        s.observed as f64 / span.max(1) as f64
                    })
                    .fold(f64::INFINITY, f64::min);
                worst.sort_by(|a, b| {
                    b.staleness
                        .cmp(&a.staleness)
                        .then(b.gaps.cmp(&a.gaps))
                        .then(a.key.cmp(&b.key))
                });
                worst.truncate(Self::WORST_KEYS);
                DatasetQuality {
                    dataset: dataset.clone(),
                    keys_tracked: keys.len() as u64,
                    keys_stale,
                    gaps,
                    missed_rounds,
                    min_coverage: if min_coverage.is_finite() {
                        min_coverage
                    } else {
                        0.0
                    },
                    max_staleness,
                    worst,
                }
            })
            .collect();
        QualityReport {
            tick: self.tick,
            interval: self.interval,
            rounds: self.rounds,
            datasets,
        }
    }

    /// Exports per-dataset aggregate gauges (`spotlake_archive_*`) into
    /// `registry`. Aggregates only — per-key series would explode scrape
    /// cardinality with a production catalog; key-level detail lives in
    /// the `/quality` report.
    pub fn export(&self, registry: &Registry) {
        for d in self.report().datasets {
            let labels = [("dataset", d.dataset.as_str())];
            registry.gauge_set(
                "spotlake_archive_keys_tracked",
                "Distinct coverage keys ever observed per dataset.",
                &labels,
                d.keys_tracked as f64,
            );
            registry.gauge_set(
                "spotlake_archive_keys_stale",
                "Keys not observed in the most recent round.",
                &labels,
                d.keys_stale as f64,
            );
            registry.gauge_set(
                "spotlake_archive_gaps_total",
                "Distinct coverage gaps detected across keys.",
                &labels,
                d.gaps as f64,
            );
            registry.gauge_set(
                "spotlake_archive_missed_rounds_total",
                "Total missed rounds across keys.",
                &labels,
                d.missed_rounds as f64,
            );
            registry.gauge_set(
                "spotlake_archive_min_coverage",
                "Minimum per-key coverage ratio (observed / expected rounds).",
                &labels,
                d.min_coverage,
            );
            registry.gauge_set(
                "spotlake_archive_max_staleness_ticks",
                "Maximum per-key staleness in ticks.",
                &labels,
                d.max_staleness as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_observation_reports_full_coverage() {
        let mut m = QualityMonitor::new(1);
        for tick in 1..=5 {
            m.observe("sps", "m5.large:a", tick);
            m.observe("sps", "m5.large:b", tick);
            m.round_complete(tick);
        }
        let report = m.report();
        assert_eq!(report.tick, 5);
        assert_eq!(report.rounds, 5);
        let sps = &report.datasets[0];
        assert_eq!(sps.dataset, "sps");
        assert_eq!(sps.keys_tracked, 2);
        assert_eq!(sps.keys_stale, 0);
        assert_eq!(sps.gaps, 0);
        assert_eq!(sps.missed_rounds, 0);
        assert_eq!(sps.min_coverage, 1.0);
        assert_eq!(sps.max_staleness, 0);
    }

    #[test]
    fn a_skipped_round_counts_one_gap_and_its_missed_rounds() {
        let mut m = QualityMonitor::new(1);
        m.observe("sps", "k", 1);
        m.round_complete(1);
        // Rounds 2 and 3 miss the key entirely.
        m.round_complete(2);
        m.round_complete(3);
        m.observe("sps", "k", 4);
        m.round_complete(4);
        let d = &m.report().datasets[0];
        assert_eq!(d.gaps, 1, "one contiguous gap");
        assert_eq!(d.missed_rounds, 2, "rounds 2 and 3 missed");
        assert_eq!(d.keys_stale, 0, "key is current again");
        assert!((d.min_coverage - 0.5).abs() < 1e-9, "{}", d.min_coverage);
    }

    #[test]
    fn staleness_grows_while_a_key_is_unobserved() {
        let mut m = QualityMonitor::new(2);
        m.observe("advisor", "k", 2);
        m.round_complete(2);
        m.round_complete(4);
        m.round_complete(6);
        let d = &m.report().datasets[0];
        assert_eq!(d.keys_stale, 1);
        assert_eq!(d.max_staleness, 4);
        assert_eq!(d.worst[0].key, "k");
        assert_eq!(d.worst[0].staleness, 4);
    }

    #[test]
    fn same_tick_duplicates_are_no_ops() {
        let mut m = QualityMonitor::new(1);
        m.observe("advisor", "k", 1);
        m.observe("advisor", "k", 1); // score + savings measures, same round
        m.round_complete(1);
        m.observe("advisor", "k", 2);
        m.observe("advisor", "k", 2);
        m.round_complete(2);
        let d = &m.report().datasets[0];
        assert_eq!(d.gaps, 0);
        assert_eq!(d.min_coverage, 1.0);
        assert_eq!(d.worst[0].observed, 2, "one observation per round");
    }

    #[test]
    fn sweeps_refresh_all_known_keys() {
        let mut m = QualityMonitor::new(1);
        m.observe("price", "a", 1);
        m.observe("price", "b", 1);
        m.round_complete(1);
        // Round 2: only `a` changed, but the sweep covered both.
        m.observe("price", "a", 2);
        m.observe_sweep("price", 2);
        m.round_complete(2);
        let d = &m.report().datasets[0];
        assert_eq!(d.keys_stale, 0);
        assert_eq!(d.gaps, 0);
        assert_eq!(d.min_coverage, 1.0);
    }

    #[test]
    fn worst_keys_rank_stalest_first_and_truncate() {
        let mut m = QualityMonitor::new(1);
        for i in 0..15u64 {
            // Key i last observed at tick i+1 → staleness 15-(i+1).
            m.observe("sps", &format!("k{i:02}"), i + 1);
        }
        for tick in 1..=15 {
            m.round_complete(tick);
        }
        let d = &m.report().datasets[0];
        assert_eq!(d.keys_tracked, 15);
        assert_eq!(d.worst.len(), QualityMonitor::WORST_KEYS);
        assert_eq!(d.worst[0].key, "k00", "stalest first");
        assert!(d.worst[0].staleness > d.worst[9].staleness);
    }

    #[test]
    fn export_emits_aggregate_gauges_only() {
        let mut m = QualityMonitor::new(1);
        m.observe("sps", "k1", 1);
        m.observe("sps", "k2", 1);
        m.round_complete(1);
        m.round_complete(2);
        let r = Registry::new();
        m.export(&r);
        let text = r.render();
        assert!(text.contains("spotlake_archive_keys_tracked{dataset=\"sps\"} 2"));
        assert!(text.contains("spotlake_archive_keys_stale{dataset=\"sps\"} 2"));
        assert!(text.contains("spotlake_archive_max_staleness_ticks{dataset=\"sps\"} 1"));
        assert!(!text.contains("k1"), "no per-key series in the scrape");
    }

    #[test]
    fn reports_are_deterministic() {
        let build = || {
            let mut m = QualityMonitor::new(1);
            for tick in 1..=6 {
                for key in ["c", "a", "b"] {
                    if !(tick + key.len() as u64).is_multiple_of(3) {
                        m.observe("sps", key, tick);
                    }
                }
                m.round_complete(tick);
            }
            m.report()
        };
        assert_eq!(build(), build());
    }
}
