//! Deterministic SLO engine: declarative objectives evaluated over the
//! telemetry sample stream.
//!
//! The serving layer's raw signals (status-labelled request counters,
//! per-phase latency histograms, queue-depth gauges, shed counters) say
//! what happened; an *objective* says what was supposed to happen. This
//! module turns [`TelemetrySample`] sequences into verdicts:
//!
//! * [`SloSpec`] declares one objective — availability by status class,
//!   a per-phase latency ceiling against the
//!   `spotlake_server_phase_micros` p99 estimate, a queue-depth ceiling,
//!   or a shed-rate ceiling — with a target success ratio.
//! * [`SloTracker`] folds samples into per-objective good/bad unit
//!   streams and feeds them to a [`BurnTracker`] each: error-budget
//!   accounting plus the multi-window ok → warning → page alert state
//!   machine from [`burn`](crate::burn).
//! * [`SloReport`] is the snapshot: budgets, burns, alert states, every
//!   recorded transition, and *exemplars* — the request ids from a
//!   [`RequestRecorder`](crate::RequestRecorder) snapshot that best
//!   explain an alerting objective, joinable at `/debug/requests`.
//!
//! Everything is a pure function of the fed sample sequence: no wall
//! clocks, no ambient state. Feeding the same samples (live from the
//! recorder, or parsed back from a dumped `telemetry.jsonl`) yields
//! byte-identical [`SloReport::render_json`] output, which is what makes
//! the online `/debug/slo` endpoint and the offline `spotlake slo-eval`
//! replay agree by construction.
//!
//! Counter-backed signals (availability, shed rate) are measured as
//! deltas between consecutive samples, so each step weighs by actual
//! traffic. Gauge- and quantile-backed signals (queue depth, phase
//! latency) contribute one unit per sample: good while under the
//! ceiling, bad while over. The phase p99 is a running estimate over the
//! whole run, so the latency objective measures sustained regressions,
//! not single slow requests.

use crate::burn::{AlertState, AlertTransition, BurnPolicy, BurnTracker};
use crate::lifecycle::RequestRecord;
use crate::registry::fmt_f64;
use crate::telemetry::TelemetrySample;
use std::fmt::Write as _;

/// How many exemplar request ids an alerting objective carries.
const EXEMPLARS_KEPT: usize = 3;

/// Sampled-key prefix of the status-labelled server request counter.
const REQUESTS_BY_STATUS_PREFIX: &str = "spotlake_server_requests_total{status=\"";

/// The signal one objective watches, and what counts as a bad unit.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// Responses in the 5xx status class are bad; other numeric statuses
    /// are good. Units are per-request (counter deltas).
    Availability,
    /// One unit per sample: bad while the running p99 of the named
    /// request phase exceeds `p99_micros_max`.
    PhaseLatency {
        /// Phase label of `spotlake_server_phase_micros` to watch.
        phase: String,
        /// Ceiling on the phase's p99 estimate, in microseconds.
        p99_micros_max: f64,
    },
    /// One unit per sample: bad while the admission-queue depth gauge
    /// exceeds `max_depth`.
    QueueDepth {
        /// Ceiling on `spotlake_server_queue_depth`.
        max_depth: f64,
    },
    /// Connections shed at admission are bad; admitted ones are good.
    /// Units are per-connection (counter deltas).
    ShedRate,
}

impl SloSignal {
    /// Stable label for rendering (`availability`, `phase_latency:handle`,
    /// `queue_depth`, `shed_rate`).
    pub fn label(&self) -> String {
        match self {
            SloSignal::Availability => "availability".to_owned(),
            SloSignal::PhaseLatency { phase, .. } => format!("phase_latency:{phase}"),
            SloSignal::QueueDepth { .. } => "queue_depth".to_owned(),
            SloSignal::ShedRate => "shed_rate".to_owned(),
        }
    }

    /// The numeric ceiling, for signals that have one.
    pub fn threshold(&self) -> Option<f64> {
        match self {
            SloSignal::PhaseLatency { p99_micros_max, .. } => Some(*p99_micros_max),
            SloSignal::QueueDepth { max_depth } => Some(*max_depth),
            SloSignal::Availability | SloSignal::ShedRate => None,
        }
    }
}

/// One declarative objective: a named signal with a target success ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name — the `objective` label on `spotlake_slo_*` metrics.
    pub name: String,
    /// Target good-unit ratio in `[0, 1]`; `1 - target` is the error
    /// budget.
    pub target: f64,
    /// What the objective watches.
    pub signal: SloSignal,
}

impl SloSpec {
    /// Creates a spec.
    pub fn new(name: &str, target: f64, signal: SloSignal) -> Self {
        SloSpec {
            name: name.to_owned(),
            target,
            signal,
        }
    }
}

/// A full SLO declaration: the objectives plus the shared burn policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSet {
    /// Objectives, evaluated and reported in this order.
    pub objectives: Vec<SloSpec>,
    /// Windows and thresholds for every objective's alert state machine.
    pub policy: BurnPolicy,
}

impl SloSet {
    /// The default serving objectives: 99% non-5xx availability, handle
    /// p99 under 50ms for 95% of samples, queue depth under 32 for 90%
    /// of samples, and at most 5% of connections shed.
    pub fn serving_defaults() -> Self {
        SloSet {
            objectives: vec![
                SloSpec::new("availability", 0.99, SloSignal::Availability),
                SloSpec::new(
                    "handle_latency",
                    0.95,
                    SloSignal::PhaseLatency {
                        phase: "handle".to_owned(),
                        p99_micros_max: 50_000.0,
                    },
                ),
                SloSpec::new(
                    "queue_depth",
                    0.90,
                    SloSignal::QueueDepth { max_depth: 32.0 },
                ),
                SloSpec::new("shed_rate", 0.95, SloSignal::ShedRate),
            ],
            policy: BurnPolicy::default(),
        }
    }
}

/// One objective's live evaluation state.
#[derive(Debug, Clone)]
struct ObjectiveTracker {
    spec: SloSpec,
    burn: BurnTracker,
    /// Cached sampled-value key for gauge/quantile signals.
    gauge_key: Option<String>,
    /// Previous cumulative (bad, total) for counter-delta signals.
    prev_bad: f64,
    prev_total: f64,
}

impl ObjectiveTracker {
    fn new(spec: SloSpec, policy: BurnPolicy) -> Self {
        let gauge_key = match &spec.signal {
            SloSignal::PhaseLatency { phase, .. } => Some(format!(
                "spotlake_server_phase_micros_p99{{phase=\"{phase}\"}}"
            )),
            SloSignal::QueueDepth { .. } => Some("spotlake_server_queue_depth".to_owned()),
            SloSignal::Availability | SloSignal::ShedRate => None,
        };
        ObjectiveTracker {
            burn: BurnTracker::new(spec.target, policy),
            spec,
            gauge_key,
            prev_bad: 0.0,
            prev_total: 0.0,
        }
    }

    /// The `(good, bad)` unit counts this sample contributes.
    fn step_units(&mut self, sample: &TelemetrySample) -> (f64, f64) {
        match &self.spec.signal {
            SloSignal::Availability => {
                let (bad, total) = status_class_totals(sample);
                self.counter_delta(bad, total)
            }
            SloSignal::ShedRate => {
                let bad = sample_value(sample, "spotlake_server_shed_total").unwrap_or(0.0);
                let total =
                    sample_value(sample, "spotlake_server_connections_total").unwrap_or(0.0);
                self.counter_delta(bad, total)
            }
            SloSignal::PhaseLatency { p99_micros_max, .. } => {
                match self
                    .gauge_key
                    .as_deref()
                    .and_then(|k| sample_value(sample, k))
                {
                    // No observations yet: the sample carries no units.
                    None => (0.0, 0.0),
                    Some(v) if v > *p99_micros_max => (0.0, 1.0),
                    Some(_) => (1.0, 0.0),
                }
            }
            SloSignal::QueueDepth { max_depth } => {
                match self
                    .gauge_key
                    .as_deref()
                    .and_then(|k| sample_value(sample, k))
                {
                    None => (0.0, 0.0),
                    Some(v) if v > *max_depth => (0.0, 1.0),
                    Some(_) => (1.0, 0.0),
                }
            }
        }
    }

    /// Turns cumulative `(bad, total)` counters into this step's deltas.
    fn counter_delta(&mut self, bad_cum: f64, total_cum: f64) -> (f64, f64) {
        let bad = (bad_cum - self.prev_bad).max(0.0);
        let total = (total_cum - self.prev_total).max(0.0);
        self.prev_bad = bad_cum;
        self.prev_total = total_cum;
        (total - bad, bad)
    }
}

/// Looks up one key in a sample's sorted value list.
fn sample_value(sample: &TelemetrySample, key: &str) -> Option<f64> {
    sample
        .values
        .binary_search_by(|(k, _)| k.as_str().cmp(key))
        .ok()
        .map(|i| sample.values[i].1)
}

/// Cumulative `(bad, total)` over the status-labelled request counter:
/// numeric statuses count toward the total, the 5xx class is bad.
/// Non-numeric labels (aborted connections) are excluded — the client
/// vanished, the server answered nothing.
fn status_class_totals(sample: &TelemetrySample) -> (f64, f64) {
    let start = sample
        .values
        .partition_point(|(k, _)| k.as_str() < REQUESTS_BY_STATUS_PREFIX);
    let mut bad = 0.0;
    let mut total = 0.0;
    for (key, value) in &sample.values[start..] {
        let Some(rest) = key.strip_prefix(REQUESTS_BY_STATUS_PREFIX) else {
            break;
        };
        let Some(first) = rest.chars().next() else {
            continue;
        };
        if !first.is_ascii_digit() {
            continue;
        }
        total += value;
        if first == '5' {
            bad += value;
        }
    }
    (bad, total)
}

/// Folds telemetry samples into per-objective budgets and alert states.
/// See the module docs for the evaluation model.
#[derive(Debug, Clone)]
pub struct SloTracker {
    objectives: Vec<ObjectiveTracker>,
    policy: BurnPolicy,
    samples: u64,
    last_at_micros: u64,
}

impl SloTracker {
    /// Creates a tracker for `set`, with every objective at Ok and a
    /// full budget.
    pub fn new(set: SloSet) -> Self {
        SloTracker {
            objectives: set
                .objectives
                .into_iter()
                .map(|spec| ObjectiveTracker::new(spec, set.policy))
                .collect(),
            policy: set.policy,
            samples: 0,
            last_at_micros: 0,
        }
    }

    /// Feeds one sample to every objective and returns the alert
    /// transitions it caused, as `(objective name, transition)` pairs in
    /// objective order. Samples must be fed oldest first.
    pub fn observe(&mut self, sample: &TelemetrySample) -> Vec<(String, AlertTransition)> {
        self.samples += 1;
        self.last_at_micros = sample.at_micros;
        let mut out = Vec::new();
        for objective in &mut self.objectives {
            let (good, bad) = objective.step_units(sample);
            if let Some(transition) =
                objective
                    .burn
                    .observe(sample.seq, sample.at_micros, good, bad)
            {
                out.push((objective.spec.name.clone(), transition));
            }
        }
        out
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The worst alert state across objectives, with a one-line detail
    /// naming the worst offender — the `/health` component summary.
    pub fn health_component(&self) -> (AlertState, String) {
        let worst = self
            .objectives
            .iter()
            .map(|o| o.burn.state())
            .max()
            .unwrap_or(AlertState::Ok);
        if worst == AlertState::Ok {
            return (
                worst,
                format!("{} objectives within budget", self.objectives.len()),
            );
        }
        let offender = self
            .objectives
            .iter()
            .find(|o| o.burn.state() == worst)
            .map(|o| {
                format!(
                    "{} {}: burn fast {:.1}x slow {:.1}x",
                    o.spec.name,
                    o.burn.state().as_str(),
                    o.burn.fast_burn(),
                    o.burn.slow_burn()
                )
            })
            .unwrap_or_default();
        (worst, offender)
    }

    /// Snapshots the tracker into a report. Exemplars start empty; see
    /// [`SloReport::attach_exemplars`].
    pub fn report(&self) -> SloReport {
        let objectives: Vec<ObjectiveVerdict> = self
            .objectives
            .iter()
            .map(|o| {
                let state = o.burn.state();
                let budget_remaining = o.burn.budget_remaining();
                ObjectiveVerdict {
                    name: o.spec.name.clone(),
                    signal: o.spec.signal.clone(),
                    target: o.spec.target,
                    good: o.burn.good(),
                    bad: o.burn.bad(),
                    budget_remaining,
                    fast_burn: o.burn.fast_burn(),
                    slow_burn: o.burn.slow_burn(),
                    state,
                    healthy: state == AlertState::Ok && budget_remaining > 0.0,
                    transitions: o.burn.transitions().to_vec(),
                    exemplar_request_ids: Vec::new(),
                }
            })
            .collect();
        SloReport {
            samples: self.samples,
            last_at_micros: self.last_at_micros,
            policy: self.policy,
            healthy: objectives.iter().all(|o| o.healthy),
            objectives,
        }
    }
}

/// One objective's verdict inside a [`SloReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveVerdict {
    /// Objective name from the spec.
    pub name: String,
    /// The watched signal.
    pub signal: SloSignal,
    /// Target good-unit ratio.
    pub target: f64,
    /// Cumulative good units.
    pub good: f64,
    /// Cumulative bad units.
    pub bad: f64,
    /// Error budget still unspent, in `[0, 1]`.
    pub budget_remaining: f64,
    /// Latest fast-window burn rate.
    pub fast_burn: f64,
    /// Latest slow-window burn rate.
    pub slow_burn: f64,
    /// Current alert state.
    pub state: AlertState,
    /// `true` iff the state is Ok and budget remains — the verdict the
    /// bench gate asserts.
    pub healthy: bool,
    /// Every alert transition recorded, oldest first.
    pub transitions: Vec<AlertTransition>,
    /// Request ids explaining the alert, joinable at `/debug/requests`.
    /// Empty until [`SloReport::attach_exemplars`] runs, and for
    /// objectives that never left Ok.
    pub exemplar_request_ids: Vec<u64>,
}

/// A deterministic snapshot of an [`SloTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Samples the tracker has observed.
    pub samples: u64,
    /// Timestamp of the newest observed sample.
    pub last_at_micros: u64,
    /// The burn policy the verdicts were evaluated under.
    pub policy: BurnPolicy,
    /// `true` iff every objective is healthy.
    pub healthy: bool,
    /// Per-objective verdicts, in spec order.
    pub objectives: Vec<ObjectiveVerdict>,
}

impl SloReport {
    /// The worst alert state across objectives.
    pub fn worst_state(&self) -> AlertState {
        self.objectives
            .iter()
            .map(|o| o.state)
            .max()
            .unwrap_or(AlertState::Ok)
    }

    /// Attaches exemplar request ids to every objective that is alerting
    /// or has alerted: the retained requests that best explain the
    /// objective's failure mode, ranked deterministically (worst first,
    /// ties by ascending id). `records` is a
    /// [`RequestRecorder`](crate::RequestRecorder) snapshot — the same
    /// rows `/debug/requests` serves, so every id returned here resolves
    /// there.
    pub fn attach_exemplars(&mut self, records: &[RequestRecord]) {
        for objective in &mut self.objectives {
            if objective.state == AlertState::Ok && objective.transitions.is_empty() {
                continue;
            }
            objective.exemplar_request_ids = pick_exemplars(records, &objective.signal);
        }
    }

    /// Renders the report as one deterministic JSON document: fixed key
    /// order, objectives in spec order, floats rounded to four decimals.
    /// Equal reports render byte-identically — the `/debug/slo` ↔
    /// `slo-eval` agreement contract.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"spotlake-slo\",\"version\":1");
        let _ = write!(
            out,
            ",\"samples\":{},\"last_at_micros\":{},\"healthy\":{},\"state\":\"{}\"",
            self.samples,
            self.last_at_micros,
            self.healthy,
            self.worst_state().as_str()
        );
        let _ = write!(
            out,
            ",\"policy\":{{\"fast_window_micros\":{},\"slow_window_micros\":{},\"warn_fast\":{},\"warn_slow\":{},\"page_fast\":{},\"page_slow\":{}}}",
            self.policy.fast_window_micros,
            self.policy.slow_window_micros,
            fmt_f64(round4(self.policy.warn_fast)),
            fmt_f64(round4(self.policy.warn_slow)),
            fmt_f64(round4(self.policy.page_fast)),
            fmt_f64(round4(self.policy.page_slow))
        );
        out.push_str(",\"objectives\":[");
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"signal\":\"{}\",\"target\":{},\"threshold\":{}",
                escape(&o.name),
                escape(&o.signal.label()),
                fmt_f64(round4(o.target)),
                o.signal
                    .threshold()
                    .map_or("null".to_owned(), |t| fmt_f64(round4(t)))
            );
            let _ = write!(
                out,
                ",\"good\":{},\"bad\":{},\"budget_remaining\":{},\"fast_burn\":{},\"slow_burn\":{},\"state\":\"{}\",\"healthy\":{}",
                fmt_f64(round4(o.good)),
                fmt_f64(round4(o.bad)),
                fmt_f64(round4(o.budget_remaining)),
                fmt_f64(round4(o.fast_burn)),
                fmt_f64(round4(o.slow_burn)),
                o.state.as_str(),
                o.healthy
            );
            out.push_str(",\"transitions\":[");
            for (j, t) in o.transitions.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"seq\":{},\"at_micros\":{},\"from\":\"{}\",\"to\":\"{}\",\"fast_burn\":{},\"slow_burn\":{}}}",
                    t.seq,
                    t.at_micros,
                    t.from.as_str(),
                    t.to.as_str(),
                    fmt_f64(round4(t.fast_burn)),
                    fmt_f64(round4(t.slow_burn))
                );
            }
            out.push_str("],\"exemplar_request_ids\":[");
            for (j, id) in o.exemplar_request_ids.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Rounds to four decimal places so rendered burns and budgets are
/// byte-stable; non-finite values collapse to 0.
fn round4(v: f64) -> f64 {
    if v.is_finite() {
        (v * 10_000.0).round() / 10_000.0
    } else {
        0.0
    }
}

/// Escapes a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Picks up to [`EXEMPLARS_KEPT`] request ids explaining `signal`'s
/// failure mode: 5xx responses for availability/shed objectives, the
/// slowest offenders of the watched phase for latency, the longest queue
/// waits for queue depth. Falls back to the slowest requests overall
/// when no record matches the filter (e.g. shed connections never reach
/// a worker), so an alert always carries a joinable id when any request
/// was retained.
fn pick_exemplars(records: &[RequestRecord], signal: &SloSignal) -> Vec<u64> {
    let phase_micros = |r: &RequestRecord, phase: &str| {
        r.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.duration_micros())
            .unwrap_or(0)
    };
    let mut scored: Vec<(u64, u64)> = match signal {
        SloSignal::Availability | SloSignal::ShedRate => records
            .iter()
            .filter(|r| r.status.starts_with('5'))
            .map(|r| (r.total_micros, r.request_id))
            .collect(),
        SloSignal::PhaseLatency {
            phase,
            p99_micros_max,
        } => records
            .iter()
            .filter(|r| phase_micros(r, phase) as f64 > *p99_micros_max)
            .map(|r| (phase_micros(r, phase), r.request_id))
            .collect(),
        SloSignal::QueueDepth { .. } => records
            .iter()
            .filter(|r| phase_micros(r, "queue_wait") > 0)
            .map(|r| (phase_micros(r, "queue_wait"), r.request_id))
            .collect(),
    };
    if scored.is_empty() {
        scored = records
            .iter()
            .map(|r| (r.total_micros, r.request_id))
            .collect();
    }
    // Worst first; ties break toward the earlier request id.
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(EXEMPLARS_KEPT);
    scored.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::lifecycle::PhaseSpan;
    use crate::registry::Registry;
    use crate::telemetry::TelemetryRecorder;

    /// Drives a registry through `rounds` of traffic (10 good requests
    /// per round, plus 10 worker 503s per round from `bad_from` on),
    /// sampling every 200ms of manual-clock time.
    fn availability_run(rounds: u64, bad_from: u64) -> Vec<TelemetrySample> {
        let clock = ManualClock::new(0);
        let registry = Registry::new();
        let recorder = TelemetryRecorder::new(rounds as usize);
        for round in 0..rounds {
            clock.advance(200_000);
            registry.counter_add(
                "spotlake_server_requests_total",
                "Requests answered on the TCP path, by status",
                &[("status", "200")],
                10,
            );
            if round >= bad_from {
                registry.counter_add(
                    "spotlake_server_requests_total",
                    "Requests answered on the TCP path, by status",
                    &[("status", "503")],
                    10,
                );
            }
            recorder.sample(clock.now(), [&registry]);
        }
        recorder.snapshot()
    }

    fn feed(samples: &[TelemetrySample]) -> (SloTracker, Vec<(String, AlertTransition)>) {
        let mut tracker = SloTracker::new(SloSet::serving_defaults());
        let mut transitions = Vec::new();
        for sample in samples {
            transitions.extend(tracker.observe(sample));
        }
        (tracker, transitions)
    }

    #[test]
    fn healthy_traffic_passes_every_objective() {
        let (tracker, transitions) = feed(&availability_run(10, u64::MAX));
        assert!(transitions.is_empty(), "{transitions:?}");
        let report = tracker.report();
        assert!(report.healthy, "{report:?}");
        assert_eq!(report.samples, 10);
        for o in &report.objectives {
            assert_eq!(o.state, AlertState::Ok, "{o:?}");
            assert_eq!(o.budget_remaining, 1.0, "{o:?}");
        }
        // Only the availability objective saw units: the run had no
        // phase histogram, queue gauge, or shed counters.
        assert_eq!(report.objectives[0].good, 100.0);
        assert_eq!(report.objectives[1].good + report.objectives[1].bad, 0.0);
    }

    #[test]
    fn status_class_burn_pages_the_availability_objective() {
        let (tracker, transitions) = feed(&availability_run(10, 5));
        let paged: Vec<_> = transitions
            .iter()
            .filter(|(name, t)| name == "availability" && t.to == AlertState::Page)
            .collect();
        assert_eq!(paged.len(), 1, "{transitions:?}");
        assert_eq!(paged[0].1.seq, 5, "pages on the first bad sample");
        let report = tracker.report();
        assert!(!report.healthy);
        let availability = &report.objectives[0];
        assert_eq!(availability.state, AlertState::Page);
        assert_eq!(availability.bad, 50.0);
        assert_eq!(availability.budget_remaining, 0.0);
        assert_eq!(report.worst_state(), AlertState::Page);
        let (health, detail) = tracker.health_component();
        assert_eq!(health, AlertState::Page);
        assert!(detail.starts_with("availability page"), "{detail}");
    }

    #[test]
    fn gauge_and_quantile_objectives_trip_on_their_ceilings() {
        let clock = ManualClock::new(0);
        let registry = Registry::new();
        let recorder = TelemetryRecorder::new(16);
        registry.histogram_record(
            "spotlake_server_phase_micros",
            "Per-request lifecycle phase durations in microseconds",
            &[("phase", "handle")],
            400_000.0,
        );
        registry.gauge_set(
            "spotlake_server_queue_depth",
            "Connections waiting in the admission queue",
            &[],
            50.0,
        );
        for _ in 0..8 {
            clock.advance(200_000);
            recorder.sample(clock.now(), [&registry]);
        }
        let (tracker, _) = feed(&recorder.snapshot());
        let report = tracker.report();
        let by_name = |name: &str| {
            report
                .objectives
                .iter()
                .find(|o| o.name == name)
                .unwrap_or_else(|| panic!("no objective {name}"))
        };
        assert_eq!(by_name("handle_latency").state, AlertState::Page);
        assert_eq!(by_name("queue_depth").state, AlertState::Page);
        assert_eq!(by_name("handle_latency").bad, 8.0);
        // No requests and no sheds: those objectives stay healthy.
        assert!(by_name("availability").healthy);
        assert!(by_name("shed_rate").healthy);
    }

    #[test]
    fn shed_rate_objective_burns_on_admission_sheds() {
        let clock = ManualClock::new(0);
        let registry = Registry::new();
        let recorder = TelemetryRecorder::new(16);
        for round in 0..8u64 {
            clock.advance(200_000);
            registry.counter_add(
                "spotlake_server_connections_total",
                "TCP connections accepted",
                &[],
                10,
            );
            if round >= 2 {
                registry.counter_add(
                    "spotlake_server_shed_total",
                    "Connections answered 503 because the admission queue was full",
                    &[],
                    8,
                );
            }
            recorder.sample(clock.now(), [&registry]);
        }
        let (tracker, transitions) = feed(&recorder.snapshot());
        assert!(
            transitions
                .iter()
                .any(|(name, t)| name == "shed_rate" && t.to == AlertState::Page),
            "{transitions:?}"
        );
        let report = tracker.report();
        let shed = report
            .objectives
            .iter()
            .find(|o| o.name == "shed_rate")
            .unwrap();
        assert_eq!(shed.bad, 48.0);
        assert_eq!(shed.budget_remaining, 0.0);
    }

    #[test]
    fn exemplars_join_alerting_objectives_to_request_records() {
        fn record(id: u64, status: &str, handle: u64, queue: u64) -> RequestRecord {
            RequestRecord {
                request_id: id,
                target: "/query".to_owned(),
                status: status.to_owned(),
                total_micros: handle + queue,
                phases: vec![
                    PhaseSpan {
                        phase: "queue_wait",
                        start_micros: 0,
                        end_micros: queue,
                    },
                    PhaseSpan {
                        phase: "handle",
                        start_micros: queue,
                        end_micros: queue + handle,
                    },
                ],
            }
        }
        let records = vec![
            record(1, "200", 10, 5),
            record(2, "503", 900, 5),
            record(3, "503", 700, 5),
            record(4, "200", 80_000, 9_000),
        ];
        let (tracker, _) = feed(&availability_run(10, 5));
        let mut report = tracker.report();
        report.attach_exemplars(&records);
        let availability = &report.objectives[0];
        // 5xx records, slowest first.
        assert_eq!(availability.exemplar_request_ids, vec![2, 3]);
        // Healthy objectives carry none.
        let latency = &report.objectives[1];
        assert!(latency.exemplar_request_ids.is_empty(), "{latency:?}");
    }

    #[test]
    fn render_is_byte_identical_across_replays_and_parse_round_trips() {
        let samples = availability_run(10, 5);
        let (tracker, _) = feed(&samples);
        let direct = tracker.report().render_json();
        // Replaying the same samples yields the same bytes.
        let (replayed, _) = feed(&samples);
        assert_eq!(direct, replayed.report().render_json());
        // Replaying through the JSONL dump-and-parse path agrees too —
        // the /debug/slo ↔ slo-eval contract. `jsonl` is rebuilt in the
        // exact `render_jsonl` wire shape.
        let jsonl: String = samples.iter().map(render_one).collect();
        let parsed = TelemetrySample::parse_jsonl(&jsonl).expect("round-trip parse");
        assert_eq!(parsed, samples);
        let (from_disk, _) = feed(&parsed);
        assert_eq!(direct, from_disk.report().render_json());
        assert!(direct.starts_with("{\"schema\":\"spotlake-slo\",\"version\":1,"));
        assert!(direct.contains("\"to\":\"page\""), "{direct}");
    }

    /// Renders one sample the way `TelemetryRecorder::render_jsonl` does.
    fn render_one(sample: &TelemetrySample) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"at_micros\":{},\"metrics\":{{",
            sample.seq, sample.at_micros
        );
        for (i, (key, value)) in sample.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), fmt_f64(*value));
        }
        out.push_str("}}\n");
        out
    }
}
