//! Neutral readiness model shared between producers (the collector) and
//! the gateway's `/health` handler.
//!
//! The gateway must not reverse-engineer collector internals to answer
//! "are we healthy?", and the collector must not know about HTTP. This
//! module is the contract between them: components report a
//! [`Readiness`] with a human-readable detail string, and the report
//! aggregates to the worst component state.

/// How ready a component is to do its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Readiness {
    /// Fully operational.
    #[default]
    Ready,
    /// Operating, but short of full service (open breaker, failed round,
    /// queued dead letters).
    Degraded,
    /// Not serving its function at all.
    Unhealthy,
}

impl Readiness {
    /// Stable lowercase name, as served in `/health` bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            Readiness::Ready => "ok",
            Readiness::Degraded => "degraded",
            Readiness::Unhealthy => "unhealthy",
        }
    }
}

/// One component's readiness plus a human-readable explanation.
#[derive(Debug, Clone)]
pub struct ComponentHealth {
    /// Component name, e.g. `store` or `collector/sps`.
    pub name: String,
    /// The component's readiness.
    pub readiness: Readiness,
    /// Why — e.g. `circuit breaker open` or `3 tables, 1200 points`.
    pub detail: String,
}

/// Aggregated readiness across components.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Per-component health, in the order reported.
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        HealthReport::default()
    }

    /// Appends a component's health.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        readiness: Readiness,
        detail: impl Into<String>,
    ) {
        self.components.push(ComponentHealth {
            name: name.into(),
            readiness,
            detail: detail.into(),
        });
    }

    /// The worst readiness across all components (`Ready` when empty).
    pub fn overall(&self) -> Readiness {
        self.components
            .iter()
            .map(|c| c.readiness)
            .max()
            .unwrap_or(Readiness::Ready)
    }

    /// Whether any component reported.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_is_the_worst_component() {
        let mut r = HealthReport::new();
        assert_eq!(r.overall(), Readiness::Ready);
        r.push("store", Readiness::Ready, "2 tables");
        assert_eq!(r.overall(), Readiness::Ready);
        r.push("collector/sps", Readiness::Degraded, "breaker open");
        assert_eq!(r.overall(), Readiness::Degraded);
        r.push("collector/price", Readiness::Unhealthy, "all failed");
        assert_eq!(r.overall(), Readiness::Unhealthy);
        assert_eq!(r.components.len(), 3);
    }

    #[test]
    fn readiness_orders_by_severity() {
        assert!(Readiness::Ready < Readiness::Degraded);
        assert!(Readiness::Degraded < Readiness::Unhealthy);
        assert_eq!(Readiness::Degraded.as_str(), "degraded");
    }

    /// The HTTP status the gateway serves for an overall readiness: the
    /// archive answers 200 while it can serve *anything* (ready or
    /// degraded) and 503 only when unhealthy. Mirrored here so the
    /// contract is pinned next to the model; the gateway's own tests
    /// exercise it over HTTP.
    fn http_status(overall: Readiness) -> u16 {
        match overall {
            Readiness::Ready | Readiness::Degraded => 200,
            Readiness::Unhealthy => 503,
        }
    }

    #[test]
    fn transition_matrix_covers_component_combinations() {
        use Readiness::{Degraded, Ready, Unhealthy};
        // (component states, expected overall, expected HTTP status)
        let matrix: &[(&[Readiness], Readiness, u16)] = &[
            (&[], Ready, 200),
            (&[Ready], Ready, 200),
            (&[Ready, Ready, Ready], Ready, 200),
            (&[Ready, Degraded], Degraded, 200),
            (&[Degraded, Ready], Degraded, 200),
            (&[Degraded, Degraded], Degraded, 200),
            (&[Ready, Unhealthy], Unhealthy, 503),
            (&[Unhealthy, Ready, Ready], Unhealthy, 503),
            (&[Degraded, Unhealthy], Unhealthy, 503),
            (&[Unhealthy, Degraded, Ready], Unhealthy, 503),
            (&[Unhealthy, Unhealthy], Unhealthy, 503),
        ];
        for (states, expected, status) in matrix {
            let mut report = HealthReport::new();
            for (i, &readiness) in states.iter().enumerate() {
                report.push(format!("component/{i}"), readiness, "detail");
            }
            assert_eq!(report.overall(), *expected, "states {states:?}");
            assert_eq!(http_status(report.overall()), *status, "states {states:?}");
        }
    }

    #[test]
    fn transitions_heal_when_components_recover() {
        use Readiness::{Degraded, Ready, Unhealthy};
        // healthy → degraded → unhealthy → recovered, as fresh reports per
        // round (the collector rebuilds its report every round).
        let rounds: &[(&[Readiness], Readiness, u16)] = &[
            (&[Ready, Ready], Ready, 200),
            (&[Ready, Degraded], Degraded, 200),
            (&[Unhealthy, Degraded], Unhealthy, 503),
            (&[Ready, Degraded], Degraded, 200),
            (&[Ready, Ready], Ready, 200),
        ];
        for (states, expected, status) in rounds {
            let mut report = HealthReport::new();
            for (i, &readiness) in states.iter().enumerate() {
                report.push(format!("c{i}"), readiness, "d");
            }
            assert_eq!(report.overall(), *expected);
            assert_eq!(http_status(report.overall()), *status);
        }
    }
}
