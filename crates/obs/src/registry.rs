//! The metric registry and its Prometheus text exposition.
//!
//! Families are stored in a `BTreeMap` keyed by family name, series in a
//! `BTreeMap` keyed by the sorted label set, so [`Registry::render`] is a
//! pure function of the recorded observations — the backbone of the
//! workspace's byte-identical `/metrics` contract. Recording goes through
//! shared references (`Mutex` inside): read paths like the store's query
//! handlers can count themselves without threading `&mut` through every
//! caller, and the serving layer's worker threads can share one registry.
//! A poisoned lock is recovered rather than propagated — a panic in one
//! worker must not take the whole metrics surface down with it (every
//! mutation here is a single whole-value update, so the protected map is
//! never observable in a half-written state).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned lock. See the module
/// docs for why poisoning is survivable here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution over fixed buckets.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Sorted `(key, value)` pairs identifying one series within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Per-bucket (non-cumulative) counts, one per bound.
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Upper bounds for histogram families; empty otherwise.
    bounds: Vec<f64>,
    series: BTreeMap<LabelSet, Value>,
}

/// Log-linear histogram bucket bounds: `steps` linear buckets per decade
/// across `decades` decades, starting at 1. `log_linear_buckets(3, 9)`
/// yields 1..9, 10..90, 100..900.
pub fn log_linear_buckets(decades: u32, steps: u32) -> Vec<f64> {
    let mut bounds = Vec::with_capacity((decades * steps) as usize);
    let mut scale = 1.0;
    for _ in 0..decades {
        for step in 1..=steps {
            bounds.push(f64::from(step) * scale);
        }
        scale *= 10.0;
    }
    bounds
}

fn default_buckets() -> Vec<f64> {
    log_linear_buckets(6, 9)
}

/// A registry of metric families.
///
/// All recording methods take `&self`; see the module docs for why. The
/// registry is `Send + Sync`: the serving layer's worker threads record
/// into one shared instance. Family kind is fixed by the first recording —
/// mixing kinds under one name is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Clone for Registry {
    fn clone(&self) -> Self {
        Registry {
            families: Mutex::new(lock(&self.families).clone()),
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to a counter series, creating family and series on
    /// first use.
    pub fn counter_add(&self, name: &str, help: &str, labels: &[(&str, &str)], delta: u64) {
        self.with_series(name, help, MetricKind::Counter, labels, |v| match v {
            Value::Counter(c) => *c += delta,
            _ => unreachable!("kind checked by with_series"),
        });
    }

    /// Sets a counter series to an externally tracked running total —
    /// for scraping components that keep their own monotonic counts. The
    /// stored value never decreases.
    pub fn counter_set(&self, name: &str, help: &str, labels: &[(&str, &str)], total: u64) {
        self.with_series(name, help, MetricKind::Counter, labels, |v| match v {
            Value::Counter(c) => *c = (*c).max(total),
            _ => unreachable!("kind checked by with_series"),
        });
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.with_series(name, help, MetricKind::Gauge, labels, |v| match v {
            Value::Gauge(g) => *g = value,
            _ => unreachable!("kind checked by with_series"),
        });
    }

    /// Records `value` into a histogram series with the default log-linear
    /// buckets (1 to 900 000 in 9 steps per decade).
    pub fn histogram_record(&self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.histogram_record_with(name, help, labels, &default_buckets(), value);
    }

    /// Records `value` into a histogram series with explicit bucket
    /// `bounds` (ascending upper bounds; `+Inf` is implicit). The first
    /// recording fixes the family's bounds; later calls must agree.
    pub fn histogram_record_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        debug_assert!(
            crate::names::family_matches(name, MetricKind::Histogram),
            "metric family {name:?} (histogram) is not in the canonical manifest (obs::names)"
        );
        let mut families = lock(&self.families);
        let family = match families.entry(name.to_owned()) {
            Entry::Vacant(e) => e.insert(Family {
                help: help.to_owned(),
                kind: MetricKind::Histogram,
                bounds: bounds.to_vec(),
                series: BTreeMap::new(),
            }),
            Entry::Occupied(e) => e.into_mut(),
        };
        assert_eq!(
            family.kind,
            MetricKind::Histogram,
            "metric family {name:?} already registered as {:?}",
            family.kind
        );
        assert_eq!(
            family.bounds, bounds,
            "metric family {name:?} recorded with mismatched bucket bounds"
        );
        let n_bounds = family.bounds.len();
        let value_entry = family
            .series
            .entry(sorted_labels(labels))
            .or_insert_with(|| Value::Histogram {
                counts: vec![0; n_bounds],
                sum: 0.0,
                count: 0,
            });
        let Value::Histogram { counts, sum, count } = value_entry else {
            unreachable!("kind checked above");
        };
        if let Some(i) = family.bounds.iter().position(|&b| value <= b) {
            counts[i] += 1;
        }
        *sum += value;
        *count += 1;
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of one histogram series
    /// by linear interpolation inside its log-linear buckets. Observations
    /// in the implicit `+Inf` bucket are clamped to the last finite bound —
    /// the estimate is a floor, not a fabricated tail. Returns `None` if
    /// the family or series is missing, empty, or not a histogram.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let families = lock(&self.families);
        let family = families.get(name)?;
        if family.kind != MetricKind::Histogram {
            return None;
        }
        let Value::Histogram { counts, count, .. } = family.series.get(&sorted_labels(labels))?
        else {
            return None;
        };
        quantile_from_buckets(&family.bounds, counts, *count, q)
    }

    /// Quantile summaries (p50/p90/p99) for every series of a histogram
    /// family, sorted by label set. Returns an empty vector if the family
    /// is missing or not a histogram.
    pub fn histogram_summaries(&self, name: &str) -> Vec<HistogramSummary> {
        let families = lock(&self.families);
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        if family.kind != MetricKind::Histogram {
            return Vec::new();
        }
        family
            .series
            .iter()
            .filter_map(|(labels, value)| {
                let Value::Histogram { counts, sum, count } = value else {
                    return None;
                };
                Some(HistogramSummary {
                    labels: labels.clone(),
                    count: *count,
                    sum: *sum,
                    p50: quantile_from_buckets(&family.bounds, counts, *count, 0.50)?,
                    p90: quantile_from_buckets(&family.bounds, counts, *count, 0.90)?,
                    p99: quantile_from_buckets(&family.bounds, counts, *count, 0.99)?,
                })
            })
            .collect()
    }

    /// Flattens every series into `(key, value)` pairs for time-series
    /// sampling (the [`TelemetryRecorder`](crate::TelemetryRecorder)'s
    /// view of a registry). Counters and gauges yield one pair keyed
    /// `name{labels}`; histograms yield `name_count{labels}` plus
    /// interpolated `name_p50{labels}` / `name_p99{labels}` estimates.
    /// Keys come out sorted (BTreeMap iteration), so the flattening is a
    /// pure function of the recorded observations.
    pub fn sampled_values(&self) -> Vec<(String, f64)> {
        let families = lock(&self.families);
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, value) in &family.series {
                let series = render_labels(labels, None);
                match value {
                    Value::Counter(c) => out.push((format!("{name}{series}"), *c as f64)),
                    Value::Gauge(g) => out.push((format!("{name}{series}"), *g)),
                    Value::Histogram { counts, count, .. } => {
                        out.push((format!("{name}_count{series}"), *count as f64));
                        for (q, suffix) in [(0.50, "p50"), (0.99, "p99")] {
                            if let Some(v) =
                                quantile_from_buckets(&family.bounds, counts, *count, q)
                            {
                                out.push((format!("{name}_{suffix}{series}"), v));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of metric families.
    pub fn family_count(&self) -> usize {
        lock(&self.families).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.families).is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Families are sorted by name, series by label set, so output is a
    /// deterministic function of the recorded observations.
    pub fn render(&self) -> String {
        Self::render_merged([self])
    }

    /// Renders several registries as one exposition document. Families are
    /// merged by name across registries (the wiring keeps them disjoint by
    /// prefix; a name collision with mismatched kinds panics), then sorted
    /// globally — callers get one coherent document regardless of which
    /// layer owns which family.
    pub fn render_merged<'a>(registries: impl IntoIterator<Item = &'a Registry>) -> String {
        let mut merged: BTreeMap<String, Family> = BTreeMap::new();
        for registry in registries {
            // Hold each registry's lock only for the snapshot clone;
            // the merge and render below run against the copy, so a
            // scrape never stalls the threads recording metrics.
            let families = lock(&registry.families).clone();
            for (name, family) in families {
                match merged.entry(name.clone()) {
                    Entry::Vacant(e) => {
                        e.insert(family);
                    }
                    Entry::Occupied(mut e) => {
                        let existing = e.get_mut();
                        assert_eq!(
                            existing.kind, family.kind,
                            "metric family {name:?} has conflicting kinds across registries"
                        );
                        assert_eq!(
                            existing.bounds, family.bounds,
                            "metric family {name:?} has conflicting buckets across registries"
                        );
                        for (labels, value) in &family.series {
                            existing.series.insert(labels.clone(), value.clone());
                        }
                    }
                }
            }
        }

        let mut out = String::new();
        for (name, family) in &merged {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, value) in &family.series {
                match value {
                    Value::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {c}", render_labels(labels, None));
                    }
                    Value::Gauge(g) => {
                        let _ =
                            writeln!(out, "{name}{} {}", render_labels(labels, None), fmt_f64(*g));
                    }
                    Value::Histogram { counts, sum, count } => {
                        let mut cumulative = 0;
                        for (bound, bucket) in family.bounds.iter().zip(counts) {
                            cumulative += bucket;
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&fmt_f64(*bound)))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {count}",
                            render_labels(labels, Some("+Inf"))
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            fmt_f64(*sum)
                        );
                        let _ =
                            writeln!(out, "{name}_count{} {count}", render_labels(labels, None));
                    }
                }
            }
        }
        out
    }

    fn with_series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        update: impl FnOnce(&mut Value),
    ) {
        debug_assert!(
            crate::names::family_matches(name, kind),
            "metric family {name:?} ({}) is not in the canonical manifest (obs::names)",
            kind.as_str()
        );
        let mut families = lock(&self.families);
        let family = match families.entry(name.to_owned()) {
            Entry::Vacant(e) => e.insert(Family {
                help: help.to_owned(),
                kind,
                bounds: Vec::new(),
                series: BTreeMap::new(),
            }),
            Entry::Occupied(e) => e.into_mut(),
        };
        assert_eq!(
            family.kind, kind,
            "metric family {name:?} already registered as {:?}",
            family.kind
        );
        let value = family
            .series
            .entry(sorted_labels(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => Value::Counter(0),
                MetricKind::Gauge => Value::Gauge(0.0),
                MetricKind::Histogram => unreachable!("histograms use histogram_record_with"),
            });
        update(value);
    }
}

/// One histogram series summarized as interpolated quantiles, as returned
/// by [`Registry::histogram_summaries`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Sorted `(key, value)` label pairs identifying the series.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Interpolates the `q`-quantile from per-bucket (non-cumulative) counts.
/// Standard Prometheus-style estimation: find the bucket holding the
/// target rank, interpolate linearly between its lower and upper bound.
/// Ranks landing in the `+Inf` bucket clamp to the last finite bound.
fn quantile_from_buckets(bounds: &[f64], counts: &[u64], total: u64, q: f64) -> Option<f64> {
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let target = q * total as f64;
    let mut cumulative = 0u64;
    for (i, (&bound, &bucket)) in bounds.iter().zip(counts).enumerate() {
        let prev = cumulative;
        cumulative += bucket;
        if (cumulative as f64) >= target {
            if bucket == 0 {
                return Some(bound);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let fraction = (target - prev as f64) / bucket as f64;
            return Some(lower + (bound - lower) * fraction.clamp(0.0, 1.0));
        }
    }
    // Rank falls in the +Inf bucket: clamp to the largest finite bound.
    bounds.last().copied()
}

fn sorted_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    set.sort();
    set
}

/// Renders `{k="v",...}` (empty string for no labels); `le` — already
/// formatted — is appended last, per Prometheus convention.
fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a value the way Prometheus clients expect: integral values
/// without a trailing `.0`, everything else via the shortest-roundtrip
/// float formatting (deterministic in Rust). Shared with the telemetry
/// JSONL renderer so both surfaces format numbers identically.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let r = Registry::new();
        r.counter_add("b_total", "B.", &[("x", "2")], 1);
        r.counter_add("a_total", "A.", &[], 3);
        r.counter_add("a_total", "A.", &[], 2);
        r.counter_add("b_total", "B.", &[("x", "1")], 7);
        let text = r.render();
        assert!(text.contains("# HELP a_total A.\n# TYPE a_total counter\na_total 5\n"));
        // Families sorted by name, series by label set.
        let a = text.find("a_total 5").unwrap();
        let b1 = text.find("b_total{x=\"1\"} 7").unwrap();
        let b2 = text.find("b_total{x=\"2\"} 1").unwrap();
        assert!(a < b1 && b1 < b2);
    }

    #[test]
    fn counter_set_is_monotonic() {
        let r = Registry::new();
        r.counter_set("t", "T.", &[], 5);
        r.counter_set("t", "T.", &[], 3);
        assert!(r.render().contains("t 5"));
        r.counter_set("t", "T.", &[], 9);
        assert!(r.render().contains("t 9"));
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("g", "G.", &[("d", "sps")], 2.0);
        r.gauge_set("g", "G.", &[("d", "sps")], 0.5);
        assert!(r.render().contains("g{d=\"sps\"} 0.5"));
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        r.counter_add("t", "T.", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("t", "T.", &[("a", "1"), ("b", "2")], 1);
        // Same series regardless of caller's label order.
        assert!(r.render().contains("t{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        let r = Registry::new();
        r.counter_add("t", "line\nbreak \\ slash", &[("v", "a\"b\\c\nd")], 1);
        let text = r.render();
        assert!(text.contains("# HELP t line\\nbreak \\\\ slash"));
        assert!(text.contains("t{v=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_invariants_hold() {
        let r = Registry::new();
        let bounds = [1.0, 5.0, 10.0];
        for v in [0.5, 3.0, 3.0, 7.0, 100.0] {
            r.histogram_record_with("h", "H.", &[], &bounds, v);
        }
        let text = r.render();
        // _bucket counts are cumulative and end at the +Inf == _count value.
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"5\"} 3"));
        assert!(text.contains("h_bucket{le=\"10\"} 4"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("h_sum 113.5"));
        assert!(text.contains("h_count 5"));
        assert!(text.contains("# TYPE h histogram"));
    }

    #[test]
    fn default_buckets_are_log_linear() {
        let b = log_linear_buckets(2, 9);
        assert_eq!(b[..9], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(b[9..12], [10.0, 20.0, 30.0]);
        assert_eq!(b.len(), 18);
        let r = Registry::new();
        r.histogram_record("h", "H.", &[], 250_000.0);
        assert!(r.render().contains("h_bucket{le=\"300000\"} 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter_add("m", "M.", &[], 1);
        r.gauge_set("m", "M.", &[], 1.0);
    }

    #[test]
    fn poisoned_registry_recovers_for_later_readers_and_writers() {
        // The kind-mismatch assert fires while the families guard is
        // held, genuinely poisoning the Mutex — exactly what a worker
        // panic mid-record does. Every later acquisition must recover
        // via PoisonError::into_inner, not propagate the panic forever.
        let r = Registry::new();
        r.counter_add("m", "M.", &[], 1);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.gauge_set("m", "M.", &[], 1.0);
        }));
        assert!(poison.is_err(), "mismatch must panic under the guard");
        // Reads recover and see the pre-panic state…
        assert!(r.render().contains("m 1"), "{}", r.render());
        // …and writes keep accumulating on the recovered lock.
        r.counter_add("m", "M.", &[], 2);
        assert!(r.render().contains("m 3"), "{}", r.render());
    }

    #[test]
    fn merged_render_combines_disjoint_families() {
        let a = Registry::new();
        a.counter_add("a_total", "A.", &[], 1);
        let b = Registry::new();
        b.gauge_set("b_state", "B.", &[], 2.0);
        let text = Registry::render_merged([&a, &b]);
        assert!(text.contains("a_total 1"));
        assert!(text.contains("b_state 2"));
        // Each family declared exactly once.
        assert_eq!(text.matches("# TYPE ").count(), 2);
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let r = Registry::new();
            for i in 0..50 {
                let label = format!("s{}", i % 7);
                r.counter_add("ops_total", "Ops.", &[("shard", &label)], i);
                r.histogram_record("ops_hist", "Hist.", &[("shard", &label)], i as f64);
            }
            r
        };
        assert_eq!(build().render(), build().render());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let bounds = [10.0, 20.0, 30.0, 40.0];
        // 10 observations spread evenly over (0, 40]: quantiles track the
        // uniform distribution's inverse CDF bucket by bucket.
        for v in [2.0, 6.0, 12.0, 16.0, 22.0, 26.0, 27.0, 32.0, 36.0, 38.0] {
            r.histogram_record_with("h", "H.", &[("op", "q")], &bounds, v);
        }
        let p50 = r.histogram_quantile("h", &[("op", "q")], 0.50).unwrap();
        // Rank 5 lands in the (20,30] bucket (cumulative 4 → 7), one third in.
        assert!((p50 - (20.0 + 10.0 / 3.0)).abs() < 1e-9, "{p50}");
        let p90 = r.histogram_quantile("h", &[("op", "q")], 0.90).unwrap();
        assert!((30.0..=40.0).contains(&p90), "{p90}");
        let p0 = r.histogram_quantile("h", &[("op", "q")], 0.0).unwrap();
        assert_eq!(p0, 0.0, "zeroth quantile is the distribution floor");
        assert_eq!(r.histogram_quantile("h", &[("op", "q")], 1.5), None);
        assert_eq!(r.histogram_quantile("h", &[("op", "zzz")], 0.5), None);
        assert_eq!(r.histogram_quantile("nope", &[], 0.5), None);
    }

    #[test]
    fn quantiles_clamp_overflow_to_last_finite_bound() {
        let r = Registry::new();
        let bounds = [1.0, 2.0];
        for v in [0.5, 50.0, 60.0, 70.0] {
            r.histogram_record_with("h", "H.", &[], &bounds, v);
        }
        // p99 rank lands in +Inf: clamped, not extrapolated.
        assert_eq!(r.histogram_quantile("h", &[], 0.99), Some(2.0));
    }

    #[test]
    fn summaries_cover_every_series_sorted() {
        let r = Registry::new();
        for (shard, v) in [("b", 5.0), ("a", 3.0), ("a", 9.0)] {
            r.histogram_record("lat", "L.", &[("shard", shard)], v);
        }
        let summaries = r.histogram_summaries("lat");
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].labels, vec![("shard".into(), "a".into())]);
        assert_eq!(summaries[0].count, 2);
        assert_eq!(summaries[0].sum, 12.0);
        assert!(summaries[0].p50 <= summaries[0].p90);
        assert!(summaries[0].p90 <= summaries[0].p99);
        assert_eq!(summaries[1].labels, vec![("shard".into(), "b".into())]);
        assert!(r.histogram_summaries("absent").is_empty());
        r.counter_add("c", "C.", &[], 1);
        assert!(
            r.histogram_summaries("c").is_empty(),
            "non-histogram family"
        );
    }

    #[test]
    fn quantile_estimates_are_not_rendered_into_the_exposition() {
        let r = Registry::new();
        r.histogram_record("h", "H.", &[], 5.0);
        let _ = r.histogram_summaries("h");
        let text = r.render();
        assert!(!text.contains("quantile"), "{text}");
        assert!(!text.contains("p50"), "{text}");
    }

    #[test]
    fn sampled_values_flatten_every_kind() {
        let r = Registry::new();
        r.counter_add("ops_total", "O.", &[("k", "a")], 3);
        r.gauge_set("depth", "D.", &[], 2.5);
        r.histogram_record_with("lat", "L.", &[], &[10.0, 20.0], 15.0);
        let values = r.sampled_values();
        let keys: Vec<&str> = values.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "depth",
                "lat_count",
                "lat_p50",
                "lat_p99",
                "ops_total{k=\"a\"}"
            ]
        );
        let get = |key: &str| values.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        assert_eq!(get("ops_total{k=\"a\"}"), Some(3.0));
        assert_eq!(get("depth"), Some(2.5));
        assert_eq!(get("lat_count"), Some(1.0));
        assert!(get("lat_p50").is_some_and(|v| (10.0..=20.0).contains(&v)));
        // Pure function of the observations.
        assert_eq!(values, r.sampled_values());
    }

    #[test]
    fn float_formatting_drops_integral_fraction() {
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-3.0), "-3");
    }
}
