//! Slow-query flight recorder: a fixed-size, deterministic top-N of the
//! most expensive queries the gateway has served.
//!
//! Operators debugging a slow archive need the *actual worst queries*, not
//! aggregate histograms. The recorder keeps the top-N completed queries
//! ranked by a deterministic cost proxy (work units, never nanoseconds),
//! so two same-seed runs dump byte-identical flight records. Recording
//! goes through `&self` (`Mutex` inside) like the registry, so the
//! gateway's read path can feed it without `&mut` plumbing and the
//! serving layer's worker threads can share one recorder. Poisoned locks
//! are recovered: each mutation is a whole-value update, so a panicking
//! worker cannot leave the recorder half-written.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identity and timing context a query carries through the store layers.
///
/// Constructed by the gateway from the journal's trace-id allocator and
/// the simulation tick of the request; the store stamps both into its
/// cost profile and metrics so one query correlates across the trace
/// journal, the flight recorder, and EXPLAIN output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCtx {
    /// Trace id from [`crate::TraceJournal::next_trace_id`].
    pub trace_id: u64,
    /// Simulation tick at which the query ran.
    pub tick: u64,
    /// Wire-level request id assigned by the serving listener at accept
    /// (0 when the query ran without a network request, e.g. in-process).
    /// Joins gateway query traces to the server's request timeline.
    pub request_id: u64,
}

/// One completed query as retained by the [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Trace id correlating this entry with the trace journal.
    pub trace_id: u64,
    /// Wire-level request id (0 for in-process queries) — joins this
    /// entry to the server's `/debug/requests` timeline.
    pub request_id: u64,
    /// Simulation tick of the request.
    pub tick: u64,
    /// Store operation (`query`, `latest`, `value_at`, `window`).
    pub op: String,
    /// Request path (or another human-readable query description).
    pub query: String,
    /// Deterministic cost proxy in work units.
    pub cost: u64,
    /// Rows returned to the client.
    pub rows: u64,
    /// Response body size in bytes.
    pub response_bytes: u64,
}

/// Fixed-capacity top-N recorder of the most expensive queries.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Retained entries, sorted: highest cost first, ties broken by
    /// ascending trace id (first occurrence wins the display slot).
    entries: Mutex<Vec<FlightEntry>>,
    observed: Mutex<u64>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(32)
    }
}

impl Clone for FlightRecorder {
    fn clone(&self) -> Self {
        FlightRecorder {
            capacity: self.capacity,
            entries: Mutex::new(lock(&self.entries).clone()),
            observed: Mutex::new(*lock(&self.observed)),
        }
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining the `capacity` most expensive queries.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            observed: Mutex::new(0),
        }
    }

    /// Records one completed query; evicts the cheapest retained entry
    /// when over capacity. Ordering is fully deterministic: cost
    /// descending, then trace id ascending.
    pub fn record(&self, entry: FlightEntry) {
        *lock(&self.observed) += 1;
        let mut entries = lock(&self.entries);
        let at = entries.partition_point(|e| {
            (e.cost, std::cmp::Reverse(e.trace_id))
                > (entry.cost, std::cmp::Reverse(entry.trace_id))
        });
        entries.insert(at, entry);
        entries.truncate(self.capacity);
    }

    /// The retained entries, most expensive first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        lock(&self.entries).clone()
    }

    /// Total queries observed (including those since evicted).
    pub fn observed(&self) -> u64 {
        *lock(&self.observed)
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, cost: u64) -> FlightEntry {
        FlightEntry {
            trace_id,
            request_id: trace_id + 100,
            tick: trace_id,
            op: "query".into(),
            query: format!("/query?n={trace_id}"),
            cost,
            rows: 1,
            response_bytes: 10,
        }
    }

    #[test]
    fn retains_top_n_by_cost_with_deterministic_ties() {
        let fr = FlightRecorder::new(3);
        for (id, cost) in [(0, 5), (1, 9), (2, 5), (3, 1), (4, 9)] {
            fr.record(entry(id, cost));
        }
        let snap = fr.snapshot();
        assert_eq!(fr.observed(), 5);
        assert_eq!(fr.capacity(), 3);
        let ranked: Vec<(u64, u64)> = snap.iter().map(|e| (e.cost, e.trace_id)).collect();
        // Cost desc, trace id asc on ties; cheapest (cost 1) and the
        // later cost-5 entry evicted.
        assert_eq!(ranked, vec![(9, 1), (9, 4), (5, 0)]);
    }

    #[test]
    fn insertion_order_does_not_change_the_snapshot() {
        let fill = |order: &[u64]| {
            let fr = FlightRecorder::new(4);
            for &id in order {
                fr.record(entry(id, id * 3 % 7));
            }
            fr.snapshot()
        };
        assert_eq!(fill(&[0, 1, 2, 3, 4, 5]), fill(&[5, 1, 3, 0, 4, 2]));
    }

    #[test]
    fn capacity_floor_is_one() {
        let fr = FlightRecorder::new(0);
        fr.record(entry(0, 1));
        fr.record(entry(1, 2));
        assert_eq!(fr.snapshot().len(), 1);
        assert_eq!(fr.snapshot()[0].trace_id, 1);
    }
}
