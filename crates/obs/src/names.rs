//! The canonical `spotlake_*` metric manifest.
//!
//! Every metric family the workspace may emit is declared here, once,
//! with its name, kind, and owning layer. Two consumers hold the wiring
//! to this table:
//!
//! * [`Registry`](crate::Registry) debug-asserts that any `spotlake_*`
//!   family recorded at runtime matches the manifest's name and kind, so
//!   a typo'd name or a counter re-recorded as a gauge fails the test
//!   suite immediately.
//! * `spotlake-lint` (rule `metrics-contract`) checks every `spotlake_*`
//!   string literal in the workspace source against this table at CI
//!   time, and conversely that every manifest entry is still emitted
//!   somewhere — name drift between collector/timestream/serving and
//!   `/metrics` cannot land.
//!
//! Adding a metric therefore means adding its row here first; removing
//! one means deleting its row in the same change.

use crate::registry::MetricKind;

/// One canonical metric family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricFamilyDef {
    /// The family name exactly as rendered in the text exposition.
    pub name: &'static str,
    /// The kind every emitter must record the family as.
    pub kind: MetricKind,
    /// The subsystem that owns (emits) the family.
    pub layer: &'static str,
    /// One-line description of what the family measures.
    pub help: &'static str,
}

use MetricKind::{Counter, Gauge, Histogram};

/// Every `spotlake_*` family the workspace may emit, sorted by name.
pub const METRIC_FAMILIES: &[MetricFamilyDef] = &[
    MetricFamilyDef {
        name: "spotlake_api_faults_injected_total",
        kind: Counter,
        layer: "cloud-api",
        help: "Injected API faults by surface and kind",
    },
    MetricFamilyDef {
        name: "spotlake_archive_gaps_total",
        kind: Gauge,
        layer: "quality",
        help: "Coverage gaps observed across all tracked keys",
    },
    MetricFamilyDef {
        name: "spotlake_archive_keys_stale",
        kind: Gauge,
        layer: "quality",
        help: "Tracked keys whose last observation is older than the staleness bound",
    },
    MetricFamilyDef {
        name: "spotlake_archive_keys_tracked",
        kind: Gauge,
        layer: "quality",
        help: "Distinct dataset keys the quality monitor tracks",
    },
    MetricFamilyDef {
        name: "spotlake_archive_max_staleness_ticks",
        kind: Gauge,
        layer: "quality",
        help: "Worst-case staleness across tracked keys, in ticks",
    },
    MetricFamilyDef {
        name: "spotlake_archive_min_coverage",
        kind: Gauge,
        layer: "quality",
        help: "Minimum per-dataset coverage ratio",
    },
    MetricFamilyDef {
        name: "spotlake_archive_missed_rounds_total",
        kind: Gauge,
        layer: "quality",
        help: "Collection rounds with at least one missing key",
    },
    MetricFamilyDef {
        name: "spotlake_collector_breaker_state",
        kind: Gauge,
        layer: "collector",
        help: "Circuit-breaker state per dataset (0 closed, 1 half-open, 2 open)",
    },
    MetricFamilyDef {
        name: "spotlake_collector_dead_letter_depth",
        kind: Gauge,
        layer: "collector",
        help: "Queries currently parked in the dead-letter queue",
    },
    MetricFamilyDef {
        name: "spotlake_collector_dead_lettered_total",
        kind: Counter,
        layer: "collector",
        help: "Queries ever parked in the dead-letter queue",
    },
    MetricFamilyDef {
        name: "spotlake_collector_degraded_rounds_total",
        kind: Counter,
        layer: "collector",
        help: "Rounds that completed with at least one dataset missing",
    },
    MetricFamilyDef {
        name: "spotlake_collector_failed_queries_total",
        kind: Counter,
        layer: "collector",
        help: "SPS queries that exhausted their in-round retries",
    },
    MetricFamilyDef {
        name: "spotlake_collector_records_total",
        kind: Counter,
        layer: "collector",
        help: "Records collected, by dataset",
    },
    MetricFamilyDef {
        name: "spotlake_collector_records_written_total",
        kind: Counter,
        layer: "collector",
        help: "Records written to the archive",
    },
    MetricFamilyDef {
        name: "spotlake_collector_retries_total",
        kind: Counter,
        layer: "collector",
        help: "API retries performed, by dataset",
    },
    MetricFamilyDef {
        name: "spotlake_collector_round_ops",
        kind: Histogram,
        layer: "collector",
        help: "API operations needed per collection round",
    },
    MetricFamilyDef {
        name: "spotlake_collector_rounds_total",
        kind: Counter,
        layer: "collector",
        help: "Collection rounds completed",
    },
    MetricFamilyDef {
        name: "spotlake_collector_unique_queries_used",
        kind: Gauge,
        layer: "collector",
        help: "Unique SPS queries consumed against the per-account daily limit",
    },
    MetricFamilyDef {
        name: "spotlake_http_requests_total",
        kind: Counter,
        layer: "serving",
        help: "HTTP requests served, by route and status",
    },
    MetricFamilyDef {
        name: "spotlake_http_response_bytes",
        kind: Histogram,
        layer: "serving",
        help: "HTTP response body sizes in bytes",
    },
    MetricFamilyDef {
        name: "spotlake_loadgen_latency_micros",
        kind: Histogram,
        layer: "loadgen",
        help: "Client-observed request latency in microseconds (open-loop: from scheduled start)",
    },
    MetricFamilyDef {
        name: "spotlake_loadgen_requests_total",
        kind: Counter,
        layer: "loadgen",
        help: "Load-generator actions executed, by kind and outcome",
    },
    MetricFamilyDef {
        name: "spotlake_query_chunks_decompressed",
        kind: Histogram,
        layer: "store",
        help: "Compressed chunks decompressed per query",
    },
    MetricFamilyDef {
        name: "spotlake_query_cost",
        kind: Histogram,
        layer: "serving",
        help: "Estimated cost units per served query",
    },
    MetricFamilyDef {
        name: "spotlake_query_rows_decoded",
        kind: Histogram,
        layer: "store",
        help: "Rows decoded per query before filtering",
    },
    MetricFamilyDef {
        name: "spotlake_query_rows_post_filter",
        kind: Histogram,
        layer: "store",
        help: "Rows surviving dimension/time filters per query",
    },
    MetricFamilyDef {
        name: "spotlake_query_series_scanned",
        kind: Histogram,
        layer: "store",
        help: "Series scanned per query",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_bytes_truncated_total",
        kind: Counter,
        layer: "recovery",
        help: "Torn-tail bytes truncated from the WAL at startup",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_checkpoint_loaded",
        kind: Gauge,
        layer: "recovery",
        help: "Whether startup recovery loaded a checkpoint snapshot (0/1)",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_frames_replayed_total",
        kind: Counter,
        layer: "recovery",
        help: "Intact WAL frames replayed at startup",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_point_count",
        kind: Gauge,
        layer: "recovery",
        help: "Points in the recovered database",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_records_replayed_total",
        kind: Counter,
        layer: "recovery",
        help: "Records carried by replayed WAL frames",
    },
    MetricFamilyDef {
        name: "spotlake_recovery_rounds_recovered_total",
        kind: Counter,
        layer: "recovery",
        help: "Distinct round ticks recovered from the WAL",
    },
    MetricFamilyDef {
        name: "spotlake_server_bad_requests_total",
        kind: Counter,
        layer: "server",
        help: "Requests rejected by the fail-closed wire parser, by status",
    },
    MetricFamilyDef {
        name: "spotlake_server_connections_total",
        kind: Counter,
        layer: "server",
        help: "TCP connections accepted by the listener",
    },
    MetricFamilyDef {
        name: "spotlake_server_deadline_exceeded_total",
        kind: Counter,
        layer: "server",
        help: "Requests answered 504 because the per-request deadline elapsed",
    },
    MetricFamilyDef {
        name: "spotlake_server_inflight",
        kind: Gauge,
        layer: "server",
        help: "Requests currently being handled by worker threads",
    },
    MetricFamilyDef {
        name: "spotlake_server_phase_micros",
        kind: Histogram,
        layer: "server",
        help:
            "Per-request lifecycle phase durations in microseconds (queue_wait|parse|handle|write)",
    },
    MetricFamilyDef {
        name: "spotlake_server_queue_depth",
        kind: Gauge,
        layer: "server",
        help: "Connections waiting in the bounded admission queue",
    },
    MetricFamilyDef {
        name: "spotlake_server_request_micros",
        kind: Histogram,
        layer: "server",
        help: "Server-side request wall time in microseconds",
    },
    MetricFamilyDef {
        name: "spotlake_server_requests_total",
        kind: Counter,
        layer: "server",
        help: "Requests answered on the TCP path, by status",
    },
    MetricFamilyDef {
        name: "spotlake_server_shed_total",
        kind: Counter,
        layer: "server",
        help: "Connections answered 503 because the admission queue was full",
    },
    MetricFamilyDef {
        name: "spotlake_server_slow_clients_closed_total",
        kind: Counter,
        layer: "server",
        help: "Connections closed for exceeding read/write timeouts",
    },
    MetricFamilyDef {
        name: "spotlake_server_worker_panics_total",
        kind: Counter,
        layer: "server",
        help: "Handler panics caught and converted to 500s by worker isolation",
    },
    MetricFamilyDef {
        name: "spotlake_shard_commit_failures_total",
        kind: Counter,
        layer: "store",
        help: "Round batches a shard failed to commit, by dataset and region",
    },
    MetricFamilyDef {
        name: "spotlake_shard_commits_total",
        kind: Counter,
        layer: "store",
        help: "Round batches committed through a shard's WAL, by dataset and region",
    },
    MetricFamilyDef {
        name: "spotlake_shard_count",
        kind: Gauge,
        layer: "store",
        help: "Shards (dataset x region fault domains) in the archive",
    },
    MetricFamilyDef {
        name: "spotlake_shard_points",
        kind: Gauge,
        layer: "store",
        help: "Points held by each shard's database",
    },
    MetricFamilyDef {
        name: "spotlake_shard_quarantined_count",
        kind: Gauge,
        layer: "store",
        help: "Shards quarantined pending fsck --repair",
    },
    MetricFamilyDef {
        name: "spotlake_shard_state",
        kind: Gauge,
        layer: "store",
        help: "Per-shard state (0 healthy, 1 failed, 2 quarantined)",
    },
    MetricFamilyDef {
        name: "spotlake_slo_alert_state",
        kind: Gauge,
        layer: "slo",
        help: "Current alert state per objective (0 ok, 1 warning, 2 page)",
    },
    MetricFamilyDef {
        name: "spotlake_slo_alert_transitions_total",
        kind: Counter,
        layer: "slo",
        help: "Alert state transitions, by objective and destination state",
    },
    MetricFamilyDef {
        name: "spotlake_slo_budget_remaining_ratio",
        kind: Gauge,
        layer: "slo",
        help: "Unspent error budget per objective, 0 through 1",
    },
    MetricFamilyDef {
        name: "spotlake_slo_evaluations_total",
        kind: Counter,
        layer: "slo",
        help: "Telemetry samples evaluated by the SLO tracker",
    },
    MetricFamilyDef {
        name: "spotlake_store_compression_ratio",
        kind: Gauge,
        layer: "store",
        help: "Raw-to-compressed size ratio of stored series",
    },
    MetricFamilyDef {
        name: "spotlake_store_queries_total",
        kind: Counter,
        layer: "store",
        help: "Queries executed against the store",
    },
    MetricFamilyDef {
        name: "spotlake_store_query_rows",
        kind: Histogram,
        layer: "store",
        help: "Rows returned per store query",
    },
    MetricFamilyDef {
        name: "spotlake_store_records_deduped_total",
        kind: Counter,
        layer: "store",
        help: "Records dropped as change-point duplicates",
    },
    MetricFamilyDef {
        name: "spotlake_store_records_stored_total",
        kind: Counter,
        layer: "store",
        help: "Records actually stored after dedup",
    },
    MetricFamilyDef {
        name: "spotlake_store_records_submitted_total",
        kind: Counter,
        layer: "store",
        help: "Records submitted to the store",
    },
    MetricFamilyDef {
        name: "spotlake_store_write_batch_records",
        kind: Histogram,
        layer: "store",
        help: "Records per write batch",
    },
    MetricFamilyDef {
        name: "spotlake_store_write_batches_total",
        kind: Counter,
        layer: "store",
        help: "Write batches accepted by the store",
    },
    MetricFamilyDef {
        name: "spotlake_store_write_throttled_total",
        kind: Counter,
        layer: "store",
        help: "Write batches rejected by injected throttling",
    },
    MetricFamilyDef {
        name: "spotlake_telemetry_evicted_total",
        kind: Counter,
        layer: "telemetry",
        help: "Telemetry ring-buffer samples evicted to stay within capacity",
    },
    MetricFamilyDef {
        name: "spotlake_telemetry_samples_total",
        kind: Counter,
        layer: "telemetry",
        help: "Telemetry samples taken since server start",
    },
    MetricFamilyDef {
        name: "spotlake_wal_bytes_appended_total",
        kind: Counter,
        layer: "wal",
        help: "Bytes appended to the write-ahead log",
    },
    MetricFamilyDef {
        name: "spotlake_wal_checkpoints_total",
        kind: Counter,
        layer: "wal",
        help: "Checkpoint rotations completed",
    },
    MetricFamilyDef {
        name: "spotlake_wal_dead",
        kind: Gauge,
        layer: "wal",
        help: "Whether a crash fault has killed the log (0/1)",
    },
    MetricFamilyDef {
        name: "spotlake_wal_faults_injected_total",
        kind: Counter,
        layer: "wal",
        help: "Injected WAL disk faults, by kind",
    },
    MetricFamilyDef {
        name: "spotlake_wal_frames_appended_total",
        kind: Counter,
        layer: "wal",
        help: "Frames appended to the write-ahead log",
    },
    MetricFamilyDef {
        name: "spotlake_wal_size_bytes",
        kind: Gauge,
        layer: "wal",
        help: "Committed bytes in the write-ahead log",
    },
];

/// Looks up a family definition by its exposition name.
pub fn lookup(name: &str) -> Option<&'static MetricFamilyDef> {
    METRIC_FAMILIES
        .binary_search_by(|def| def.name.cmp(name))
        .ok()
        .and_then(|i| METRIC_FAMILIES.get(i))
}

/// Whether `name` is a canonical family recorded with the right kind.
/// Names outside the `spotlake_` namespace are not the manifest's
/// business and always pass.
pub fn family_matches(name: &str, kind: MetricKind) -> bool {
    if !name.starts_with("spotlake_") {
        return true;
    }
    lookup(name).is_some_and(|def| def.kind == kind)
}

/// The manifest rendered as deterministic JSON — one object per family,
/// sorted by name — for tooling that wants the contract without linking
/// this crate.
pub fn manifest_json() -> String {
    let mut out = String::from("[");
    for (i, def) in METRIC_FAMILIES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"layer\":\"{}\",\"help\":\"{}\"}}",
            def.name,
            match def.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            },
            def.layer,
            def.help,
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_sorted_and_unique() {
        for pair in METRIC_FAMILIES.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "manifest out of order near {}",
                pair[1].name
            );
        }
    }

    #[test]
    fn every_family_is_namespaced_and_described() {
        for def in METRIC_FAMILIES {
            assert!(def.name.starts_with("spotlake_"), "{}", def.name);
            assert!(!def.help.is_empty(), "{} lacks help", def.name);
            assert!(!def.layer.is_empty(), "{} lacks a layer", def.name);
        }
    }

    #[test]
    fn lookup_and_kind_checks_work() {
        assert!(lookup("spotlake_wal_dead").is_some());
        assert!(lookup("spotlake_nonexistent").is_none());
        assert!(family_matches("spotlake_wal_dead", MetricKind::Gauge));
        assert!(!family_matches("spotlake_wal_dead", MetricKind::Counter));
        assert!(!family_matches("spotlake_nonexistent", MetricKind::Gauge));
        assert!(family_matches("other_metric", MetricKind::Counter));
    }

    #[test]
    fn manifest_json_is_valid_enough() {
        let json = manifest_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("{\"name\":").count(), METRIC_FAMILIES.len());
    }
}
