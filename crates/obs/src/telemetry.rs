//! Telemetry time-series: a fixed-capacity ring buffer of whole-registry
//! samples.
//!
//! Point-in-time `/metrics` scrapes cannot answer "when during the run
//! did the queue start backing up?" — that needs a time series. The
//! [`TelemetryRecorder`] takes periodic samples of one or more
//! [`Registry`] instances (every counter and gauge, plus interpolated
//! p50/p99 estimates per histogram series via
//! [`Registry::sampled_values`]) and retains the most recent `capacity`
//! of them, oldest evicted first.
//!
//! Like everything in this crate, the recorder itself never reads a
//! clock: the caller stamps each sample with `at_micros` (the serving
//! layer passes elapsed wall micros since server start; tests drive a
//! [`ManualClock`](crate::ManualClock)). Two runs feeding identical
//! registries and timestamps produce byte-identical JSONL.

use crate::registry::{fmt_f64, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned lock: a panicking
/// sampler thread must not take the telemetry surface down (mutations
/// are whole-value updates, never half-written).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One point-in-time capture of the sampled registries.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Monotonic sample number (0-based, never reused after eviction).
    pub seq: u64,
    /// Caller-supplied timestamp in microseconds.
    pub at_micros: u64,
    /// Flattened `(key, value)` pairs, sorted by key — the union of
    /// every sampled registry's [`Registry::sampled_values`].
    pub values: Vec<(String, f64)>,
}

impl TelemetrySample {
    /// Parses samples back from the [`TelemetryRecorder::render_jsonl`]
    /// wire format: one `{"seq":N,"at_micros":N,"metrics":{...}}` object
    /// per line, blank lines skipped. This is the offline half of the
    /// SLO determinism contract — `spotlake slo-eval` replays a dumped
    /// series through the same [`SloTracker`](crate::SloTracker) the
    /// live server runs. Errors name the offending 1-based line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TelemetrySample>, String> {
        let mut out = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            out.push(
                Self::parse_line(line).map_err(|e| format!("telemetry line {}: {e}", index + 1))?,
            );
        }
        Ok(out)
    }

    /// Parses one rendered sample line.
    fn parse_line(line: &str) -> Result<TelemetrySample, String> {
        let rest = line
            .strip_prefix("{\"seq\":")
            .ok_or("expected {\"seq\":...")?;
        let (seq, rest) = take_u64(rest)?;
        let rest = rest
            .strip_prefix(",\"at_micros\":")
            .ok_or("expected \"at_micros\"")?;
        let (at_micros, rest) = take_u64(rest)?;
        let mut rest = rest
            .strip_prefix(",\"metrics\":{")
            .ok_or("expected \"metrics\" object")?;
        let mut values: Vec<(String, f64)> = Vec::new();
        if let Some(after) = rest.strip_prefix("}}") {
            if !after.is_empty() {
                return Err("trailing data after sample object".to_owned());
            }
            return Ok(TelemetrySample {
                seq,
                at_micros,
                values,
            });
        }
        loop {
            let body = rest.strip_prefix('"').ok_or("expected metric key")?;
            let (key, body) = take_string(body)?;
            let body = body.strip_prefix(':').ok_or("expected ':' after key")?;
            let (value, body) = take_f64(body)?;
            values.push((key, value));
            if let Some(next) = body.strip_prefix(',') {
                rest = next;
                continue;
            }
            let after = body
                .strip_prefix("}}")
                .ok_or("expected ',' or '}}' after value")?;
            if !after.is_empty() {
                return Err("trailing data after sample object".to_owned());
            }
            break;
        }
        // The renderer emits keys sorted; re-sorting makes parsed samples
        // safe for the binary-search lookups downstream even if the file
        // was assembled by hand.
        values.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(TelemetrySample {
            seq,
            at_micros,
            values,
        })
    }
}

/// Consumes a leading unsigned integer.
fn take_u64(s: &str) -> Result<(u64, &str), String> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, rest) = s.split_at(end);
    digits
        .parse()
        .map(|v| (v, rest))
        .map_err(|_| format!("expected integer, found {:?}", &s[..s.len().min(12)]))
}

/// Consumes a leading JSON number.
fn take_f64(s: &str) -> Result<(f64, &str), String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    let (digits, rest) = s.split_at(end);
    digits
        .parse()
        .map(|v| (v, rest))
        .map_err(|_| format!("expected number, found {:?}", &s[..s.len().min(12)]))
}

/// Consumes a JSON string body up to its closing quote, handling the
/// `\\` and `\"` escapes [`escape_json`] emits.
fn take_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

#[derive(Debug, Default)]
struct Inner {
    samples: VecDeque<TelemetrySample>,
    taken: u64,
    evicted: u64,
}

/// Fixed-capacity ring buffer of [`TelemetrySample`]s, oldest evicted
/// first. Sampling goes through `&self` (`Mutex` inside) so a dedicated
/// sampler thread and readers can share one recorder.
#[derive(Debug)]
pub struct TelemetryRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for TelemetryRecorder {
    fn default() -> Self {
        TelemetryRecorder::new(1024)
    }
}

impl TelemetryRecorder {
    /// Creates a recorder retaining the `capacity` most recent samples.
    pub fn new(capacity: usize) -> Self {
        TelemetryRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Captures one sample of `registries` at `at_micros`, evicting the
    /// oldest retained sample when over capacity. When registries share
    /// a key (the wiring keeps them disjoint by family prefix), the
    /// last one sampled wins. Returns the sample's `seq`.
    pub fn sample<'a>(
        &self,
        at_micros: u64,
        registries: impl IntoIterator<Item = &'a Registry>,
    ) -> u64 {
        let mut merged: BTreeMap<String, f64> = BTreeMap::new();
        for registry in registries {
            merged.extend(registry.sampled_values());
        }
        let mut inner = lock(&self.inner);
        let seq = inner.taken;
        inner.taken += 1;
        inner.samples.push_back(TelemetrySample {
            seq,
            at_micros,
            values: merged.into_iter().collect(),
        });
        while inner.samples.len() > self.capacity {
            inner.samples.pop_front();
            inner.evicted += 1;
        }
        seq
    }

    /// The retained samples, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetrySample> {
        lock(&self.inner).samples.iter().cloned().collect()
    }

    /// The newest retained sample, if any — what incremental consumers
    /// (the [`SloTracker`](crate::SloTracker) wiring) feed forward right
    /// after [`sample`](Self::sample) returns.
    pub fn latest(&self) -> Option<TelemetrySample> {
        lock(&self.inner).samples.back().cloned()
    }

    /// Total samples ever taken (including those since evicted).
    pub fn samples_taken(&self) -> u64 {
        lock(&self.inner).taken
    }

    /// Samples evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        lock(&self.inner).evicted
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the retained samples as JSON lines, one object per
    /// sample: `{"seq":N,"at_micros":N,"metrics":{key:value,...}}` with
    /// metric keys sorted. Values use the same formatting as the
    /// Prometheus exposition (integral floats render without `.0`).
    pub fn render_jsonl(&self) -> String {
        // Snapshot under the lock, format outside it: rendering the
        // whole series is O(samples) string work that the sampler
        // thread must never wait behind.
        let samples: Vec<TelemetrySample> = lock(&self.inner).samples.iter().cloned().collect();
        let mut out = String::new();
        for sample in &samples {
            out.push_str(&format!(
                "{{\"seq\":{},\"at_micros\":{},\"metrics\":{{",
                sample.seq, sample.at_micros
            ));
            for (i, (key, value)) in sample.values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape_json(key), fmt_f64(*value)));
            }
            out.push_str("}}\n");
        }
        out
    }
}

/// Escapes a metric key for embedding in a JSON string (keys carry
/// Prometheus-style label syntax, including quotes).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    fn registry_at(tick: u64) -> Registry {
        let r = Registry::new();
        r.counter_add("rounds_total", "R.", &[], tick);
        r.gauge_set("depth", "D.", &[("q", "admit")], tick as f64);
        r.histogram_record("lat", "L.", &[], (tick * 10) as f64);
        r
    }

    #[test]
    fn sampling_under_an_injected_clock_is_deterministic() {
        let run = || {
            let clock = ManualClock::new(0);
            let recorder = TelemetryRecorder::new(8);
            for tick in 1..=4u64 {
                clock.advance(250);
                recorder.sample(clock.now(), [&registry_at(tick)]);
            }
            recorder.render_jsonl()
        };
        let jsonl = run();
        assert_eq!(jsonl, run(), "same clock + registries => same bytes");
        assert_eq!(jsonl.lines().count(), 4);
        let first = jsonl.lines().next().unwrap();
        assert!(
            first.starts_with("{\"seq\":0,\"at_micros\":250,"),
            "{first}"
        );
        assert!(first.contains("\"depth{q=\\\"admit\\\"}\":1"), "{first}");
        assert!(first.contains("\"rounds_total\":1"), "{first}");
        assert!(first.contains("\"lat_count\":1"), "{first}");
        assert!(first.contains("\"lat_p50\":"), "{first}");
        assert!(first.contains("\"lat_p99\":"), "{first}");
    }

    #[test]
    fn ring_buffer_evicts_oldest_at_capacity() {
        let recorder = TelemetryRecorder::new(3);
        for at in 0..5u64 {
            recorder.sample(at * 100, [&registry_at(at + 1)]);
        }
        assert_eq!(recorder.samples_taken(), 5);
        assert_eq!(recorder.evicted(), 2);
        assert_eq!(recorder.capacity(), 3);
        let retained = recorder.snapshot();
        let seqs: Vec<u64> = retained.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "oldest evicted first, seq never reused");
        assert_eq!(retained[0].at_micros, 200);
    }

    #[test]
    fn later_registries_win_shared_keys() {
        let a = Registry::new();
        a.gauge_set("shared", "S.", &[], 1.0);
        let b = Registry::new();
        b.gauge_set("shared", "S.", &[], 2.0);
        let recorder = TelemetryRecorder::new(2);
        recorder.sample(5, [&a, &b]);
        let snap = recorder.snapshot();
        assert_eq!(snap[0].values, vec![("shared".to_owned(), 2.0)]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let recorder = TelemetryRecorder::new(0);
        recorder.sample(1, [&registry_at(1)]);
        recorder.sample(2, [&registry_at(2)]);
        assert_eq!(recorder.snapshot().len(), 1);
        assert_eq!(recorder.snapshot()[0].seq, 1);
    }

    /// The serving sampler pattern: a dedicated thread samples until
    /// signalled, takes one final flush sample on the way out, and the
    /// join must observe that flush — no sample may be lost between the
    /// stop signal and thread exit.
    #[test]
    fn sampler_thread_join_loses_no_final_sample() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let recorder = Arc::new(TelemetryRecorder::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let (recorder, stop) = (Arc::clone(&recorder), Arc::clone(&stop));
            std::thread::spawn(move || {
                let registry = registry_at(7);
                let mut at = 0u64;
                while !stop.load(Ordering::Acquire) {
                    at += 10;
                    recorder.sample(at, [&registry]);
                    std::thread::yield_now();
                }
                at += 10;
                (recorder.sample(at, [&registry]), at)
            })
        };
        while recorder.samples_taken() < 3 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let (final_seq, final_at) = sampler.join().expect("sampler thread");

        assert_eq!(final_seq, recorder.samples_taken() - 1);
        let last = recorder.latest().expect("ring is non-empty");
        assert_eq!(last.seq, final_seq, "final flush sample was lost");
        assert_eq!(last.at_micros, final_at);
        assert_eq!(recorder.snapshot().last(), Some(&last));
    }

    /// Wraparound under an injected clock: far past capacity, the ring
    /// holds exactly the newest N samples with their original seq and
    /// timestamps intact.
    #[test]
    fn wraparound_keeps_the_newest_samples_under_manual_clock() {
        let clock = ManualClock::new(0);
        let recorder = TelemetryRecorder::new(4);
        for tick in 1..=10u64 {
            clock.advance(250);
            recorder.sample(clock.now(), [&registry_at(tick)]);
        }
        assert_eq!(recorder.samples_taken(), 10);
        assert_eq!(recorder.evicted(), 6);
        let retained = recorder.snapshot();
        let seqs: Vec<u64> = retained.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        let stamps: Vec<u64> = retained.iter().map(|s| s.at_micros).collect();
        assert_eq!(stamps, [1750, 2000, 2250, 2500]);
        assert_eq!(recorder.latest().as_ref(), retained.last());
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let clock = ManualClock::new(0);
        let recorder = TelemetryRecorder::new(8);
        for tick in 1..=3u64 {
            clock.advance(250);
            recorder.sample(clock.now(), [&registry_at(tick)]);
        }
        let parsed =
            TelemetrySample::parse_jsonl(&recorder.render_jsonl()).expect("round-trip parse");
        assert_eq!(parsed, recorder.snapshot());
        // Label-carrying keys survive the escape round trip verbatim.
        assert!(parsed[0]
            .values
            .iter()
            .any(|(k, v)| k == "depth{q=\"admit\"}" && *v == 1.0));

        // Blank lines are tolerated; malformed lines are named.
        assert_eq!(TelemetrySample::parse_jsonl("\n\n"), Ok(Vec::new()));
        let err = TelemetrySample::parse_jsonl("{\"seq\":0}\n").unwrap_err();
        assert!(err.starts_with("telemetry line 1:"), "{err}");
        let err =
            TelemetrySample::parse_jsonl("{\"seq\":0,\"at_micros\":1,\"metrics\":{}}garbage\n")
                .unwrap_err();
        assert!(err.contains("trailing data"), "{err}");
    }
}
