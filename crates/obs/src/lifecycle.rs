//! Request-lifecycle records: per-request phase timelines and the
//! slow-request recorder behind the server's `/debug/requests`.
//!
//! The slow-query flight recorder only sees the query stage; tail
//! latency under load is usually dominated by what happens *around* it —
//! queue wait, head parsing, response writing. A [`RequestRecord`]
//! captures the whole wire-level timeline as contiguous [`PhaseSpan`]s
//! (offsets in microseconds from the accept instant, stamped by the
//! listener and worker), and the [`RequestRecorder`] retains the top-N
//! slowest requests, ranked deterministically by total time.
//!
//! Nothing here reads a clock: the serving layer measures and passes
//! explicit offsets, keeping this crate free of wall-clock calls.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard from a poisoned lock (whole-value
/// mutations only; a panicking worker cannot leave it half-written).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The lifecycle phases of one served request, in wire order.
pub const REQUEST_PHASES: [&str; 4] = ["queue_wait", "parse", "handle", "write"];

/// One phase of a request's timeline, as microsecond offsets from the
/// accept instant. Spans within a record are contiguous and
/// non-overlapping: each phase starts where the previous one ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (one of [`REQUEST_PHASES`]).
    pub phase: &'static str,
    /// Offset from accept at which the phase began, microseconds.
    pub start_micros: u64,
    /// Offset from accept at which the phase ended, microseconds.
    pub end_micros: u64,
}

impl PhaseSpan {
    /// The phase's duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }
}

/// One completed request's wire-level timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Request id assigned by the listener at accept — the same id the
    /// response echoes in `x-spotlake-request-id` and query traces carry.
    pub request_id: u64,
    /// Request target (path and query), or `-` when the head never
    /// parsed.
    pub target: String,
    /// Response status label (`200`, `503`, ... or `aborted`).
    pub status: String,
    /// Accept-to-finish wall time in microseconds.
    pub total_micros: u64,
    /// The phase timeline, in execution order.
    pub phases: Vec<PhaseSpan>,
}

/// Fixed-capacity top-N recorder of the slowest requests, ranked by
/// total time descending with ties broken by ascending request id —
/// fully deterministic given the same records.
#[derive(Debug)]
pub struct RequestRecorder {
    capacity: usize,
    entries: Mutex<Vec<RequestRecord>>,
    observed: Mutex<u64>,
}

impl Default for RequestRecorder {
    fn default() -> Self {
        RequestRecorder::new(64)
    }
}

impl RequestRecorder {
    /// Creates a recorder retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> Self {
        RequestRecorder {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            observed: Mutex::new(0),
        }
    }

    /// Records one completed request; evicts the fastest retained record
    /// when over capacity.
    pub fn record(&self, record: RequestRecord) {
        *lock(&self.observed) += 1;
        let mut entries = lock(&self.entries);
        let at = entries.partition_point(|e| {
            (e.total_micros, std::cmp::Reverse(e.request_id))
                > (record.total_micros, std::cmp::Reverse(record.request_id))
        });
        entries.insert(at, record);
        entries.truncate(self.capacity);
    }

    /// The retained records, slowest first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        lock(&self.entries).clone()
    }

    /// Total requests observed (including those since evicted).
    pub fn observed(&self) -> u64 {
        *lock(&self.observed)
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(request_id: u64, total: u64) -> RequestRecord {
        let spans: Vec<PhaseSpan> = REQUEST_PHASES
            .iter()
            .enumerate()
            .map(|(i, phase)| PhaseSpan {
                phase,
                start_micros: i as u64 * total / 4,
                end_micros: (i as u64 + 1) * total / 4,
            })
            .collect();
        RequestRecord {
            request_id,
            target: format!("/query?n={request_id}"),
            status: "200".into(),
            total_micros: total,
            phases: spans,
        }
    }

    #[test]
    fn retains_slowest_with_deterministic_ties() {
        let rr = RequestRecorder::new(3);
        for (id, total) in [(1, 500), (2, 900), (3, 500), (4, 100), (5, 900)] {
            rr.record(record(id, total));
        }
        assert_eq!(rr.observed(), 5);
        let ranked: Vec<(u64, u64)> = rr
            .snapshot()
            .iter()
            .map(|r| (r.total_micros, r.request_id))
            .collect();
        assert_eq!(ranked, vec![(900, 2), (900, 5), (500, 1)]);
    }

    #[test]
    fn phases_are_contiguous_and_non_overlapping() {
        let r = record(7, 400);
        assert_eq!(r.phases.len(), REQUEST_PHASES.len());
        let mut cursor = 0;
        for span in &r.phases {
            assert!(span.start_micros <= span.end_micros);
            assert_eq!(span.start_micros, cursor, "{} overlaps", span.phase);
            cursor = span.end_micros;
        }
        assert_eq!(cursor, r.total_micros);
        assert_eq!(r.phases[1].duration_micros(), 100);
    }

    #[test]
    fn capacity_floor_is_one() {
        let rr = RequestRecorder::new(0);
        rr.record(record(1, 10));
        rr.record(record(2, 20));
        let snap = rr.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].request_id, 2);
    }
}
