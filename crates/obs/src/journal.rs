//! Structured trace journal: spans and events keyed on simulation ticks.
//!
//! The journal is the narrative complement to the registry's aggregates —
//! *what happened, in order*, with enough structure to grep. Entries are
//! appended in execution order and rendered as JSON lines with sorted
//! attribute keys, so a replay under a fixed seed produces a byte-identical
//! journal.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq, Eq)]
enum EntryKind {
    Event,
    Span { end: Option<u64> },
}

#[derive(Debug, Clone)]
struct Entry {
    tick: u64,
    name: String,
    kind: EntryKind,
    attrs: Vec<(String, String)>,
}

/// Handle to an open span returned by [`TraceJournal::begin_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// An append-only journal of spans and events.
#[derive(Debug, Clone, Default)]
pub struct TraceJournal {
    entries: Vec<Entry>,
}

impl TraceJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        TraceJournal::default()
    }

    /// Records a point-in-time event at `tick` with the given attributes.
    pub fn event(&mut self, tick: u64, name: &str, attrs: &[(&str, String)]) {
        self.entries.push(Entry {
            tick,
            name: name.to_owned(),
            kind: EntryKind::Event,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }

    /// Opens a span starting at `tick`. Close it with
    /// [`TraceJournal::end_span`]; attach attributes with
    /// [`TraceJournal::span_attr`].
    pub fn begin_span(&mut self, tick: u64, name: &str) -> SpanId {
        self.entries.push(Entry {
            tick,
            name: name.to_owned(),
            kind: EntryKind::Span { end: None },
            attrs: Vec::new(),
        });
        SpanId(self.entries.len() - 1)
    }

    /// Attaches an attribute to an open (or closed) span.
    pub fn span_attr(&mut self, span: SpanId, key: &str, value: String) {
        if let Some(entry) = self.entries.get_mut(span.0) {
            entry.attrs.push((key.to_owned(), value));
        }
    }

    /// Closes a span at `tick`.
    pub fn end_span(&mut self, span: SpanId, tick: u64) {
        if let Some(entry) = self.entries.get_mut(span.0) {
            if let EntryKind::Span { end } = &mut entry.kind {
                *end = Some(tick);
            }
        }
    }

    /// Number of journal entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the journal as JSON lines, one entry per line, in append
    /// order. Attribute keys are sorted, strings escaped — the output is a
    /// deterministic function of the recorded entries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            match &entry.kind {
                EntryKind::Event => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"event\",\"tick\":{},\"name\":\"{}\"",
                        entry.tick,
                        escape(&entry.name)
                    );
                }
                EntryKind::Span { end } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"span\",\"start\":{},\"end\":{},\"name\":\"{}\"",
                        entry.tick,
                        end.map_or("null".to_owned(), |e| e.to_string()),
                        escape(&entry.name)
                    );
                }
            }
            if !entry.attrs.is_empty() {
                let mut attrs = entry.attrs.clone();
                attrs.sort();
                out.push_str(",\"attrs\":{");
                for (i, (k, v)) in attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_render_in_order() {
        let mut j = TraceJournal::new();
        let span = j.begin_span(3, "round");
        j.event(
            3,
            "dataset",
            &[("dataset", "sps".into()), ("records", "12".into())],
        );
        j.span_attr(span, "degraded", "false".into());
        j.end_span(span, 3);
        let text = j.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"span\",\"start\":3,\"end\":3,\"name\":\"round\""));
        assert!(lines[0].contains("\"attrs\":{\"degraded\":\"false\"}"));
        assert!(lines[1].contains("\"dataset\":\"sps\""));
        assert!(lines[1].contains("\"records\":\"12\""));
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
    }

    #[test]
    fn unclosed_span_renders_null_end() {
        let mut j = TraceJournal::new();
        j.begin_span(1, "open");
        assert!(j.render().contains("\"end\":null"));
    }

    #[test]
    fn attrs_render_sorted_regardless_of_insertion_order() {
        let mut a = TraceJournal::new();
        a.event(0, "e", &[("z", "1".into()), ("a", "2".into())]);
        let mut b = TraceJournal::new();
        b.event(0, "e", &[("a", "2".into()), ("z", "1".into())]);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("{\"a\":\"2\",\"z\":\"1\"}"));
    }

    #[test]
    fn strings_are_json_escaped() {
        let mut j = TraceJournal::new();
        j.event(0, "weird\"name", &[("k", "line\nbreak\\\u{1}".into())]);
        let text = j.render();
        assert!(text.contains("weird\\\"name"));
        assert!(text.contains("line\\nbreak\\\\\\u0001"));
    }
}
