//! Structured trace journal: spans and events keyed on simulation ticks.
//!
//! The journal is the narrative complement to the registry's aggregates —
//! *what happened, in order*, with enough structure to grep. Entries are
//! appended in execution order and rendered as JSON lines with sorted
//! attribute keys, so a replay under a fixed seed produces a byte-identical
//! journal.
//!
//! The rendered document is versioned: the first line is a header record
//! (`{"kind":"header","schema":"spotlake-trace","version":2,...}`) and
//! [`TraceJournal::parse`] refuses documents whose schema or version does
//! not match, so an old reader never silently misinterprets a new journal.
//! Spans may nest: [`TraceJournal::begin_child_span`] links a stage span to
//! its parent by entry sequence number, which is how the query path records
//! its per-stage cost profile under one root span.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Schema name stamped into the journal header.
pub const JOURNAL_SCHEMA: &str = "spotlake-trace";

/// Current journal format version. Bump when the line format changes
/// incompatibly; [`TraceJournal::parse`] rejects any other version.
pub const JOURNAL_VERSION: u64 = 2;

#[derive(Debug, Clone, PartialEq, Eq)]
enum EntryKind {
    Event,
    Span {
        end: Option<u64>,
        /// Sequence number of the parent span's entry, for child spans.
        parent: Option<u64>,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    tick: u64,
    name: String,
    kind: EntryKind,
    attrs: Vec<(String, String)>,
}

/// Handle to an open span returned by [`TraceJournal::begin_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// Errors from [`TraceJournal::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The document has no header line.
    MissingHeader,
    /// The header names a different schema or version.
    VersionMismatch {
        /// Schema named in the document (empty if absent).
        schema: String,
        /// Version named in the document (0 if absent).
        version: u64,
    },
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::MissingHeader => write!(f, "journal has no header record"),
            JournalError::VersionMismatch { schema, version } => write!(
                f,
                "journal schema {schema:?} version {version} (expected {JOURNAL_SCHEMA:?} version {JOURNAL_VERSION})"
            ),
            JournalError::Malformed { line, detail } => {
                write!(f, "malformed journal line {line}: {detail}")
            }
        }
    }
}

impl Error for JournalError {}

/// An append-only journal of spans and events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceJournal {
    entries: Vec<Entry>,
    /// Monotonic trace-id allocator; see [`TraceJournal::next_trace_id`].
    trace_ids: u64,
}

impl TraceJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        TraceJournal::default()
    }

    /// Allocates the next trace id — a monotonically increasing number the
    /// query path stamps into spans, flight-recorder entries, and EXPLAIN
    /// bodies so one query can be correlated across all three.
    pub fn next_trace_id(&mut self) -> u64 {
        let id = self.trace_ids;
        self.trace_ids += 1;
        id
    }

    /// Records a point-in-time event at `tick` with the given attributes.
    pub fn event(&mut self, tick: u64, name: &str, attrs: &[(&str, String)]) {
        self.entries.push(Entry {
            tick,
            name: name.to_owned(),
            kind: EntryKind::Event,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }

    /// Opens a span starting at `tick`. Close it with
    /// [`TraceJournal::end_span`]; attach attributes with
    /// [`TraceJournal::span_attr`].
    pub fn begin_span(&mut self, tick: u64, name: &str) -> SpanId {
        self.push_span(tick, name, None)
    }

    /// Opens a span nested under `parent` — the rendered entry carries a
    /// `parent` field with the parent's sequence number.
    pub fn begin_child_span(&mut self, tick: u64, name: &str, parent: SpanId) -> SpanId {
        self.push_span(tick, name, Some(parent.0 as u64))
    }

    fn push_span(&mut self, tick: u64, name: &str, parent: Option<u64>) -> SpanId {
        self.entries.push(Entry {
            tick,
            name: name.to_owned(),
            kind: EntryKind::Span { end: None, parent },
            attrs: Vec::new(),
        });
        SpanId(self.entries.len() - 1)
    }

    /// Attaches an attribute to an open (or closed) span.
    pub fn span_attr(&mut self, span: SpanId, key: &str, value: String) {
        if let Some(entry) = self.entries.get_mut(span.0) {
            entry.attrs.push((key.to_owned(), value));
        }
    }

    /// Closes a span at `tick`.
    pub fn end_span(&mut self, span: SpanId, tick: u64) {
        if let Some(entry) = self.entries.get_mut(span.0) {
            if let EntryKind::Span { end, .. } = &mut entry.kind {
                *end = Some(tick);
            }
        }
    }

    /// The sequence number of `span` — its position in the journal, as
    /// rendered in the `seq` field.
    pub fn span_seq(&self, span: SpanId) -> u64 {
        span.0 as u64
    }

    /// Number of journal entries (the header record is not an entry).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the journal as JSON lines: a schema/version header record
    /// first, then one entry per line in append order. Attribute keys are
    /// sorted, strings escaped — the output is a deterministic function of
    /// the recorded entries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"header\",\"schema\":\"{JOURNAL_SCHEMA}\",\"version\":{JOURNAL_VERSION},\"entries\":{}}}",
            self.entries.len()
        );
        for (seq, entry) in self.entries.iter().enumerate() {
            match &entry.kind {
                EntryKind::Event => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"event\",\"seq\":{seq},\"tick\":{},\"name\":\"{}\"",
                        entry.tick,
                        escape(&entry.name)
                    );
                }
                EntryKind::Span { end, parent } => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"span\",\"seq\":{seq},\"start\":{},\"end\":{},\"name\":\"{}\"",
                        entry.tick,
                        end.map_or("null".to_owned(), |e| e.to_string()),
                        escape(&entry.name)
                    );
                    if let Some(parent) = parent {
                        let _ = write!(out, ",\"parent\":{parent}");
                    }
                }
            }
            if !entry.attrs.is_empty() {
                let mut attrs = entry.attrs.clone();
                attrs.sort();
                out.push_str(",\"attrs\":{");
                for (i, (k, v)) in attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parses a document produced by [`TraceJournal::render`].
    ///
    /// The first line must be a header record naming this schema and
    /// version; anything else is rejected rather than misread. The parser
    /// only accepts the exact line shape `render` emits (it is a format
    /// check as much as a reader).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::MissingHeader`] for an empty or headerless
    /// document, [`JournalError::VersionMismatch`] for a foreign schema or
    /// version, and [`JournalError::Malformed`] for unparseable lines.
    pub fn parse(text: &str) -> Result<TraceJournal, JournalError> {
        let mut lines = text.lines().enumerate();
        let Some((_, header)) = lines.next() else {
            return Err(JournalError::MissingHeader);
        };
        let header_fields = parse_line_fields(header, 1)?;
        if field_str(&header_fields, "kind") != Some("header") {
            return Err(JournalError::MissingHeader);
        }
        let schema = field_str(&header_fields, "schema").unwrap_or("").to_owned();
        let version = field_u64(&header_fields, "version").unwrap_or(0);
        if schema != JOURNAL_SCHEMA || version != JOURNAL_VERSION {
            return Err(JournalError::VersionMismatch { schema, version });
        }

        let mut journal = TraceJournal::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let fields = parse_line_fields(line, lineno)?;
            let malformed = |detail: &str| JournalError::Malformed {
                line: lineno,
                detail: detail.to_owned(),
            };
            let attrs = match fields.iter().find(|(k, _)| k == "attrs") {
                Some((_, Field::Attrs(attrs))) => attrs.clone(),
                Some(_) => return Err(malformed("attrs is not an object")),
                None => Vec::new(),
            };
            match field_str(&fields, "kind") {
                Some("event") => {
                    let tick = field_u64(&fields, "tick").ok_or_else(|| malformed("no tick"))?;
                    let name = field_str(&fields, "name").ok_or_else(|| malformed("no name"))?;
                    let borrowed: Vec<(&str, String)> =
                        attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                    journal.event(tick, name, &borrowed);
                }
                Some("span") => {
                    let start = field_u64(&fields, "start").ok_or_else(|| malformed("no start"))?;
                    let name = field_str(&fields, "name").ok_or_else(|| malformed("no name"))?;
                    let span = match field_u64(&fields, "parent") {
                        Some(parent) => {
                            journal.begin_child_span(start, name, SpanId(parent as usize))
                        }
                        None => journal.begin_span(start, name),
                    };
                    for (k, v) in attrs {
                        journal.span_attr(span, &k, v);
                    }
                    if let Some(end) = field_u64(&fields, "end") {
                        journal.end_span(span, end);
                    }
                }
                Some(other) => {
                    return Err(JournalError::Malformed {
                        line: lineno,
                        detail: format!("unknown kind {other:?}"),
                    })
                }
                None => return Err(malformed("no kind field")),
            }
        }
        Ok(journal)
    }
}

/// A parsed top-level field of one journal line.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    Num(u64),
    Null,
    Attrs(Vec<(String, String)>),
}

fn field_str<'a>(fields: &'a [(String, Field)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Field::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

fn field_u64(fields: &[(String, Field)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        Field::Num(n) if k == key => Some(*n),
        _ => None,
    })
}

/// Parses one rendered journal line into its top-level fields. This is a
/// reader for the journal's own output shape, not a general JSON parser:
/// values are strings, non-negative integers, `null`, or the one-level
/// string-to-string `attrs` object.
fn parse_line_fields(line: &str, lineno: usize) -> Result<Vec<(String, Field)>, JournalError> {
    let malformed = |detail: String| JournalError::Malformed {
        line: lineno,
        detail,
    };
    let bytes = line.as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return Err(malformed("line is not a JSON object".into()));
    }
    let mut fields = Vec::new();
    let mut i = 1usize;
    loop {
        // End of object (possibly empty).
        while i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
        if i >= bytes.len() - 1 {
            break;
        }
        let key = parse_string(line, &mut i).map_err(&malformed)?;
        if bytes.get(i) != Some(&b':') {
            return Err(malformed(format!("missing ':' after key {key:?}")));
        }
        i += 1;
        let value = match bytes.get(i) {
            Some(b'"') => Field::Str(parse_string(line, &mut i).map_err(&malformed)?),
            Some(b'{') => {
                // The attrs object: string keys to string values.
                i += 1;
                let mut attrs = Vec::new();
                while bytes.get(i) != Some(&b'}') {
                    if bytes.get(i) == Some(&b',') {
                        i += 1;
                        continue;
                    }
                    let k = parse_string(line, &mut i).map_err(&malformed)?;
                    if bytes.get(i) != Some(&b':') {
                        return Err(malformed(format!("missing ':' in attrs after {k:?}")));
                    }
                    i += 1;
                    let v = parse_string(line, &mut i).map_err(&malformed)?;
                    attrs.push((k, v));
                }
                i += 1;
                Field::Attrs(attrs)
            }
            Some(b'n') if line[i..].starts_with("null") => {
                i += 4;
                Field::Null
            }
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n = line[start..i]
                    .parse()
                    .map_err(|_| malformed("number out of range".into()))?;
                Field::Num(n)
            }
            other => return Err(malformed(format!("unexpected value start: {other:?}"))),
        };
        fields.push((key, value));
    }
    Ok(fields)
}

/// Parses a JSON string starting at `*i` (which must point at `"`),
/// advancing `*i` past the closing quote.
fn parse_string(line: &str, i: &mut usize) -> Result<String, String> {
    let bytes = line.as_bytes();
    if bytes.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}", i = *i));
    }
    *i += 1;
    let mut out = String::new();
    let mut chars = line[*i..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => {
                *i += off + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((u_off, 'u')) => {
                    let hex = line[*i..]
                        .get(u_off + 1..u_off + 5)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape: {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_render_in_order_after_the_header() {
        let mut j = TraceJournal::new();
        let span = j.begin_span(3, "round");
        j.event(
            3,
            "dataset",
            &[("dataset", "sps".into()), ("records", "12".into())],
        );
        j.span_attr(span, "degraded", "false".into());
        j.end_span(span, 3);
        let text = j.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 entries");
        assert!(
            lines[0]
                .starts_with("{\"kind\":\"header\",\"schema\":\"spotlake-trace\",\"version\":2"),
            "{}",
            lines[0]
        );
        assert!(lines[1]
            .starts_with("{\"kind\":\"span\",\"seq\":0,\"start\":3,\"end\":3,\"name\":\"round\""));
        assert!(lines[1].contains("\"attrs\":{\"degraded\":\"false\"}"));
        assert!(lines[2].contains("\"dataset\":\"sps\""));
        assert!(lines[2].contains("\"records\":\"12\""));
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
    }

    #[test]
    fn unclosed_span_renders_null_end() {
        let mut j = TraceJournal::new();
        j.begin_span(1, "open");
        assert!(j.render().contains("\"end\":null"));
    }

    #[test]
    fn child_spans_carry_their_parent_seq() {
        let mut j = TraceJournal::new();
        let root = j.begin_span(5, "query");
        let child = j.begin_child_span(5, "scan", root);
        j.end_span(child, 5);
        j.end_span(root, 5);
        assert_eq!(j.span_seq(root), 0);
        assert_eq!(j.span_seq(child), 1);
        let text = j.render();
        assert!(
            text.contains("\"seq\":1,\"start\":5,\"end\":5,\"name\":\"scan\",\"parent\":0"),
            "{text}"
        );
    }

    #[test]
    fn trace_ids_are_sequential() {
        let mut j = TraceJournal::new();
        assert_eq!(j.next_trace_id(), 0);
        assert_eq!(j.next_trace_id(), 1);
        assert_eq!(j.next_trace_id(), 2);
    }

    #[test]
    fn attrs_render_sorted_regardless_of_insertion_order() {
        let mut a = TraceJournal::new();
        a.event(0, "e", &[("z", "1".into()), ("a", "2".into())]);
        let mut b = TraceJournal::new();
        b.event(0, "e", &[("a", "2".into()), ("z", "1".into())]);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("{\"a\":\"2\",\"z\":\"1\"}"));
    }

    #[test]
    fn strings_are_json_escaped() {
        let mut j = TraceJournal::new();
        j.event(0, "weird\"name", &[("k", "line\nbreak\\\u{1}".into())]);
        let text = j.render();
        assert!(text.contains("weird\\\"name"));
        assert!(text.contains("line\\nbreak\\\\\\u0001"));
    }

    #[test]
    fn render_parse_round_trips_byte_identically() {
        let mut j = TraceJournal::new();
        let root = j.begin_span(2, "query");
        let child = j.begin_child_span(2, "scan", root);
        j.span_attr(child, "rows", "14".into());
        j.end_span(child, 2);
        j.event(
            3,
            "odd \"названия\"",
            &[("k", "v\nwith\tescapes\\".into()), ("a", "1".into())],
        );
        j.span_attr(root, "trace", "7".into());
        j.end_span(root, 4);
        j.begin_span(9, "open-ended");
        let rendered = j.render();
        let parsed = TraceJournal::parse(&rendered).expect("parses");
        assert_eq!(parsed.render(), rendered, "round-trip is byte-identical");
        assert_eq!(parsed.len(), j.len());
    }

    #[test]
    fn parse_rejects_missing_header_and_foreign_versions() {
        assert_eq!(
            TraceJournal::parse(""),
            Err(JournalError::MissingHeader),
            "empty document"
        );
        assert_eq!(
            TraceJournal::parse(
                "{\"kind\":\"span\",\"seq\":0,\"start\":1,\"end\":null,\"name\":\"x\"}\n"
            ),
            Err(JournalError::MissingHeader),
            "headerless document"
        );
        let wrong_version =
            "{\"kind\":\"header\",\"schema\":\"spotlake-trace\",\"version\":99,\"entries\":0}\n";
        assert!(matches!(
            TraceJournal::parse(wrong_version),
            Err(JournalError::VersionMismatch { version: 99, .. })
        ));
        let wrong_schema =
            "{\"kind\":\"header\",\"schema\":\"acme-trace\",\"version\":2,\"entries\":0}\n";
        assert!(matches!(
            TraceJournal::parse(wrong_schema),
            Err(JournalError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        let header =
            "{\"kind\":\"header\",\"schema\":\"spotlake-trace\",\"version\":2,\"entries\":1}\n";
        let garbage = format!("{header}not json\n");
        assert!(matches!(
            TraceJournal::parse(&garbage),
            Err(JournalError::Malformed { line: 2, .. })
        ));
        let unknown_kind = format!("{header}{{\"kind\":\"wormhole\",\"tick\":0,\"name\":\"x\"}}\n");
        assert!(matches!(
            TraceJournal::parse(&unknown_kind),
            Err(JournalError::Malformed { .. })
        ));
        let no_tick = format!("{header}{{\"kind\":\"event\",\"name\":\"x\"}}\n");
        assert!(matches!(
            TraceJournal::parse(&no_tick),
            Err(JournalError::Malformed { .. })
        ));
    }
}
