//! Injectable time source for instrumented components.
//!
//! The determinism contract forbids wall clocks anywhere on the telemetry
//! path: two runs with the same seed must journal the same ticks. The
//! [`Clock`] trait is the seam — components read time through it, and the
//! wiring layer decides what "now" means (in this workspace: the
//! simulator's tick counter).

use std::cell::Cell;

/// A source of the current time in simulation ticks.
///
/// Implementations must be deterministic for a given run: the trait
/// exists precisely so no component is tempted to reach for
/// `std::time::Instant`.
pub trait Clock {
    /// The current simulation tick.
    fn now(&self) -> u64;
}

/// A [`Clock`] advanced explicitly by its owner.
///
/// The collection service sets it from the simulated cloud's tick counter
/// at the start of every round; tests set it to whatever scenario they
/// need. Interior mutability keeps `set`/`advance` available through
/// shared references, matching how the registry records observations.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    tick: Cell<u64>,
}

impl ManualClock {
    /// Creates a clock reading `tick`.
    pub fn new(tick: u64) -> Self {
        ManualClock {
            tick: Cell::new(tick),
        }
    }

    /// Sets the clock to `tick`.
    pub fn set(&self, tick: u64) {
        self.tick.set(tick);
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.tick.set(self.tick.get().saturating_add(ticks));
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.tick.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_reads_what_was_set() {
        let c = ManualClock::new(5);
        assert_eq!(c.now(), 5);
        c.set(9);
        assert_eq!(c.now(), 9);
        c.advance(3);
        assert_eq!(c.now(), 12);
    }

    #[test]
    fn advance_saturates() {
        let c = ManualClock::new(u64::MAX - 1);
        c.advance(10);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn works_through_the_trait_object() {
        let c = ManualClock::new(7);
        let dyn_clock: &dyn Clock = &c;
        assert_eq!(dyn_clock.now(), 7);
    }
}
