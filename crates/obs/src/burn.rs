//! Multi-window burn-rate alerting over an error-budget stream.
//!
//! An SLO target like "99% of requests succeed" grants an *error budget*:
//! the 1% of units that may go bad before the objective is violated. The
//! **burn rate** is how fast that budget is being consumed relative to
//! plan — a burn of 1.0 spends exactly the budget over the evaluation
//! period, 10.0 spends it ten times too fast. Alerting on a single
//! window is either noisy (short window, one blip pages) or slow (long
//! window, a full outage takes minutes to notice); the standard fix is
//! *multi-window* alerting: page only when both a fast window (is it
//! happening right now?) and a slow window (has it been happening long
//! enough to matter?) exceed their thresholds.
//!
//! [`BurnTracker`] implements that as a pure function of an observed
//! step sequence: callers feed `(at_micros, good, bad)` unit counts —
//! timestamps are caller-stamped, exactly like the telemetry recorder —
//! and the tracker maintains windowed burn rates plus an
//! ok → warning → page state machine whose transitions are recorded with
//! the sample sequence number and timestamp that triggered them. Nothing
//! here reads a clock; two identical step sequences produce identical
//! states, burns, and transition lists.

use std::collections::VecDeque;

/// Alert state of one objective, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Burn is within policy on at least one window.
    Ok,
    /// Both windows exceed the warning burn thresholds.
    Warning,
    /// Both windows exceed the page burn thresholds.
    Page,
}

impl AlertState {
    /// Stable lowercase label (`ok` / `warning` / `page`).
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Page => "page",
        }
    }

    /// Numeric severity for gauges: 0 ok, 1 warning, 2 page.
    pub fn severity(self) -> u64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warning => 1,
            AlertState::Page => 2,
        }
    }
}

/// Window lengths and burn thresholds for the alert state machine.
///
/// A state fires only when *both* windows exceed its thresholds: the
/// fast window confirms the burn is still happening, the slow window
/// that it is sustained. Severities are evaluated page-first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnPolicy {
    /// Fast ("is it happening now") window length in sample micros.
    pub fast_window_micros: u64,
    /// Slow ("is it sustained") window length in sample micros.
    pub slow_window_micros: u64,
    /// Warning threshold for the fast-window burn rate.
    pub warn_fast: f64,
    /// Warning threshold for the slow-window burn rate.
    pub warn_slow: f64,
    /// Page threshold for the fast-window burn rate.
    pub page_fast: f64,
    /// Page threshold for the slow-window burn rate.
    pub page_slow: f64,
}

impl Default for BurnPolicy {
    /// 1s/5s windows tuned for the serving benches: warning at 2x/1x
    /// budget speed, page at 10x/5x.
    fn default() -> Self {
        BurnPolicy {
            fast_window_micros: 1_000_000,
            slow_window_micros: 5_000_000,
            warn_fast: 2.0,
            warn_slow: 1.0,
            page_fast: 10.0,
            page_slow: 5.0,
        }
    }
}

/// One recorded state-machine transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertTransition {
    /// Sequence number of the sample that triggered the transition.
    pub seq: u64,
    /// Caller-stamped timestamp of that sample.
    pub at_micros: u64,
    /// State before the transition.
    pub from: AlertState,
    /// State after the transition.
    pub to: AlertState,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// One observed step retained inside the slow window.
#[derive(Debug, Clone, Copy)]
struct Step {
    at_micros: u64,
    good: f64,
    bad: f64,
}

/// Windowed burn-rate computation plus the alert state machine for one
/// objective. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct BurnTracker {
    policy: BurnPolicy,
    /// Budget fraction the target allows to go bad (`1 - target`),
    /// floored so a 100% target cannot divide by zero.
    allowed: f64,
    /// Steps inside the slow window, oldest first.
    steps: VecDeque<Step>,
    cum_good: f64,
    cum_bad: f64,
    state: AlertState,
    transitions: Vec<AlertTransition>,
    fast_burn: f64,
    slow_burn: f64,
}

impl BurnTracker {
    /// Creates a tracker for an objective with the given `target`
    /// success ratio (e.g. `0.99`) under `policy`.
    pub fn new(target: f64, policy: BurnPolicy) -> Self {
        BurnTracker {
            policy,
            allowed: (1.0 - target.clamp(0.0, 1.0)).max(1e-9),
            steps: VecDeque::new(),
            cum_good: 0.0,
            cum_bad: 0.0,
            state: AlertState::Ok,
            transitions: Vec::new(),
            fast_burn: 0.0,
            slow_burn: 0.0,
        }
    }

    /// Feeds one step — `good`/`bad` unit counts observed at sample
    /// `seq`, stamped `at_micros` — updates the windowed burns and the
    /// state machine, and returns the transition this step caused, if
    /// any. Timestamps must be non-decreasing (they come from one
    /// monotonic sample stream).
    pub fn observe(
        &mut self,
        seq: u64,
        at_micros: u64,
        good: f64,
        bad: f64,
    ) -> Option<AlertTransition> {
        let good = good.max(0.0);
        let bad = bad.max(0.0);
        self.cum_good += good;
        self.cum_bad += bad;
        self.steps.push_back(Step {
            at_micros,
            good,
            bad,
        });
        let slow_floor = at_micros.saturating_sub(self.policy.slow_window_micros);
        while self
            .steps
            .front()
            .is_some_and(|s| s.at_micros <= slow_floor)
        {
            self.steps.pop_front();
        }
        self.fast_burn = self.burn_over(at_micros, self.policy.fast_window_micros);
        self.slow_burn = self.burn_over(at_micros, self.policy.slow_window_micros);

        let next = if self.fast_burn >= self.policy.page_fast
            && self.slow_burn >= self.policy.page_slow
        {
            AlertState::Page
        } else if self.fast_burn >= self.policy.warn_fast && self.slow_burn >= self.policy.warn_slow
        {
            AlertState::Warning
        } else {
            AlertState::Ok
        };
        if next == self.state {
            return None;
        }
        let transition = AlertTransition {
            seq,
            at_micros,
            from: self.state,
            to: next,
            fast_burn: self.fast_burn,
            slow_burn: self.slow_burn,
        };
        self.state = next;
        self.transitions.push(transition);
        Some(transition)
    }

    /// Burn rate over the half-open window `(now - window, now]`: the
    /// bad-unit ratio inside it divided by the allowed ratio. Zero when
    /// the window holds no units.
    fn burn_over(&self, now_micros: u64, window_micros: u64) -> f64 {
        let floor = now_micros.saturating_sub(window_micros);
        let (mut good, mut bad) = (0.0, 0.0);
        for step in self.steps.iter().rev() {
            if step.at_micros <= floor {
                break;
            }
            good += step.good;
            bad += step.bad;
        }
        let total = good + bad;
        if total <= 0.0 {
            return 0.0;
        }
        (bad / total) / self.allowed
    }

    /// Current alert state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Latest fast-window burn rate.
    pub fn fast_burn(&self) -> f64 {
        self.fast_burn
    }

    /// Latest slow-window burn rate.
    pub fn slow_burn(&self) -> f64 {
        self.slow_burn
    }

    /// Every transition recorded so far, in order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// Cumulative good units observed.
    pub fn good(&self) -> f64 {
        self.cum_good
    }

    /// Cumulative bad units observed.
    pub fn bad(&self) -> f64 {
        self.cum_bad
    }

    /// Fraction of the error budget still unspent over the whole
    /// observed stream, clamped to `[0, 1]`: `1` with no bad units,
    /// `0` once the cumulative bad ratio reaches the allowed ratio.
    pub fn budget_remaining(&self) -> f64 {
        let total = self.cum_good + self.cum_bad;
        if total <= 0.0 {
            return 1.0;
        }
        (1.0 - (self.cum_bad / total) / self.allowed).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    fn policy() -> BurnPolicy {
        BurnPolicy::default()
    }

    #[test]
    fn clean_stream_never_alerts_and_keeps_full_budget() {
        let clock = ManualClock::new(0);
        let mut t = BurnTracker::new(0.99, policy());
        for seq in 0..50 {
            clock.advance(100_000);
            assert_eq!(t.observe(seq, clock.now(), 10.0, 0.0), None);
        }
        assert_eq!(t.state(), AlertState::Ok);
        assert_eq!(t.fast_burn(), 0.0);
        assert_eq!(t.budget_remaining(), 1.0);
        assert!(t.transitions().is_empty());
    }

    #[test]
    fn total_outage_pages_immediately_and_recovers_after_the_window() {
        let clock = ManualClock::new(0);
        let mut t = BurnTracker::new(0.99, policy());
        clock.advance(100_000);
        let tr = t
            .observe(0, clock.now(), 0.0, 10.0)
            .expect("100% bad at 100x budget speed must page");
        assert_eq!(tr.from, AlertState::Ok);
        assert_eq!(tr.to, AlertState::Page);
        assert_eq!(tr.seq, 0);
        assert_eq!(tr.at_micros, 100_000);
        assert!(tr.fast_burn >= 10.0 && tr.slow_burn >= 5.0, "{tr:?}");
        assert_eq!(t.state(), AlertState::Page);
        assert_eq!(t.budget_remaining(), 0.0);

        // Healthy traffic dilutes the windows; once the bad step ages out
        // of both windows the state returns to Ok (one transition).
        let mut recovered = Vec::new();
        for seq in 1..80 {
            clock.advance(100_000);
            if let Some(tr) = t.observe(seq, clock.now(), 10.0, 0.0) {
                recovered.push(tr);
            }
        }
        assert_eq!(t.state(), AlertState::Ok);
        assert_eq!(t.transitions().last().map(|t| t.to), Some(AlertState::Ok));
        // Budget stays spent even after the alert clears: the bad ratio
        // over the whole stream exceeded the allowance.
        assert_eq!(t.budget_remaining(), 0.0);
        assert!(
            !recovered.is_empty() && recovered.iter().all(|t| t.to != AlertState::Page),
            "{recovered:?}"
        );
    }

    #[test]
    fn moderate_burn_warns_without_paging() {
        // 5% bad at a 1% allowance is a 5x burn: above warn (2x/1x),
        // below page on the fast window (10x).
        let clock = ManualClock::new(0);
        let mut t = BurnTracker::new(0.99, policy());
        for seq in 0..30 {
            clock.advance(100_000);
            t.observe(seq, clock.now(), 19.0, 1.0);
        }
        assert_eq!(t.state(), AlertState::Warning);
        assert!(
            t.fast_burn() > 2.0 && t.fast_burn() < 10.0,
            "{}",
            t.fast_burn()
        );
        assert_eq!(t.transitions().len(), 1);
    }

    #[test]
    fn page_requires_both_windows() {
        // A long healthy history keeps the slow window below page level
        // when a short burst goes bad: warning (slow >= 1x) but no page.
        let clock = ManualClock::new(0);
        let mut t = BurnTracker::new(0.9, policy());
        for seq in 0..48 {
            clock.advance(100_000);
            t.observe(seq, clock.now(), 10.0, 0.0);
        }
        assert_eq!(t.state(), AlertState::Ok);
        for seq in 48..52 {
            clock.advance(100_000);
            t.observe(seq, clock.now(), 0.0, 10.0);
        }
        // Fast window (1s ≈ 10 steps) is ~40% bad → burn 4 < 10;
        // slow window (5s) is ~8% bad → burn 0.8 < 1. Still Ok.
        assert_eq!(
            t.state(),
            AlertState::Ok,
            "fast {} slow {}",
            t.fast_burn(),
            t.slow_burn()
        );
        assert!(t.fast_burn() > t.slow_burn());
    }

    #[test]
    fn identical_streams_produce_identical_trackers() {
        let run = || {
            let mut t = BurnTracker::new(0.95, policy());
            let mut out = Vec::new();
            for seq in 0..40u64 {
                let bad = if (20..26).contains(&seq) { 8.0 } else { 0.0 };
                if let Some(tr) = t.observe(seq, (seq + 1) * 137_000, 8.0 - bad, bad) {
                    out.push(tr);
                }
            }
            (
                out,
                t.state(),
                t.fast_burn(),
                t.slow_burn(),
                t.budget_remaining(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_windows_and_perfect_targets_stay_finite() {
        let mut t = BurnTracker::new(1.0, policy());
        assert_eq!(t.budget_remaining(), 1.0);
        t.observe(0, 1_000, 0.0, 0.0);
        assert_eq!(t.state(), AlertState::Ok);
        assert_eq!(t.fast_burn(), 0.0);
        // target 1.0 means any bad unit instantly exhausts the budget,
        // but the math stays finite.
        t.observe(1, 2_000, 0.0, 1.0);
        assert!(t.fast_burn().is_finite());
        assert_eq!(t.budget_remaining(), 0.0);
        assert_eq!(t.state(), AlertState::Page);
    }
}
