//! SpotLake: a diverse spot instance dataset archive service.
//!
//! This is the facade crate of the SpotLake reproduction (IISWC 2022). It
//! wires the substrates together and adds the paper's experiment harness:
//!
//! * [`SpotLake`] — the end-to-end pipeline: a simulated cloud
//!   ([`spotlake_cloud_sim`]), the periodic collector
//!   ([`spotlake_collector`]), the archive ([`spotlake_timestream`]), and
//!   the web service ([`spotlake_serving`]) behind one handle.
//! * [`experiment`] — the real-world fulfillment/interruption experiments
//!   of Section 5.4 (stratified sampling over score combinations,
//!   persistent 24-hour spot requests, Table 3 / Figure 11 outputs).
//! * [`prediction`] — the Section 5.5 prediction task: the random forest
//!   over archived score history versus the three current-value heuristics
//!   (Table 4).
//!
//! # Quickstart
//!
//! ```
//! use spotlake::SpotLake;
//! use spotlake_types::CatalogBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CatalogBuilder::new();
//! b.region("us-test-1", 2).instance_type("m5.large", 0.096);
//! let mut lake = SpotLake::builder().catalog(b.build()?).build()?;
//!
//! // Collect for a simulated hour, then query the archive over HTTP.
//! lake.run_rounds(6)?;
//! let response = lake.http_get("/query?table=sps&instance_type=m5.large")?;
//! assert_eq!(response.status, 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
mod pipeline;
pub mod prediction;

pub use pipeline::{SpotLake, SpotLakeBuilder, SpotLakeError};

pub use spotlake_cloud_sim::{RequestOutcome, SimCloud, SimConfig};
pub use spotlake_collector::{CollectStats, CollectorConfig};
pub use spotlake_types::Catalog;
