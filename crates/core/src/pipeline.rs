//! The end-to-end SpotLake pipeline.

use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_collector::{
    CollectError, CollectStats, CollectorConfig, CollectorService, PlanStats, RoundHealth,
};
use spotlake_serving::{Gateway, HttpRequest, HttpResponse, OpsContext, ServeError};
use spotlake_timestream::Database;
use spotlake_types::Catalog;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors from the pipeline facade.
#[derive(Debug)]
pub enum SpotLakeError {
    /// The collector failed.
    Collect(CollectError),
    /// An HTTP request string failed to parse.
    Serve(ServeError),
    /// Persistence failed.
    Store(spotlake_timestream::TsError),
}

impl fmt::Display for SpotLakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpotLakeError::Collect(e) => write!(f, "collector error: {e}"),
            SpotLakeError::Serve(e) => write!(f, "serving error: {e}"),
            SpotLakeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for SpotLakeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpotLakeError::Collect(e) => Some(e),
            SpotLakeError::Serve(e) => Some(e),
            SpotLakeError::Store(e) => Some(e),
        }
    }
}

impl From<CollectError> for SpotLakeError {
    fn from(e: CollectError) -> Self {
        SpotLakeError::Collect(e)
    }
}

impl From<ServeError> for SpotLakeError {
    fn from(e: ServeError) -> Self {
        SpotLakeError::Serve(e)
    }
}

impl From<spotlake_timestream::TsError> for SpotLakeError {
    fn from(e: spotlake_timestream::TsError) -> Self {
        SpotLakeError::Store(e)
    }
}

/// Builder for a [`SpotLake`] pipeline.
#[derive(Debug, Default)]
pub struct SpotLakeBuilder {
    catalog: Option<Catalog>,
    sim_config: Option<SimConfig>,
    collector_config: Option<CollectorConfig>,
}

impl SpotLakeBuilder {
    /// Sets the catalog (defaults to [`Catalog::aws_2022`]).
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Sets the simulation configuration.
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = Some(config);
        self
    }

    /// Sets the collector configuration.
    pub fn collector_config(mut self, config: CollectorConfig) -> Self {
        self.collector_config = Some(config);
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SpotLakeError::Collect`] if the collector cannot be
    /// planned (e.g. an explicitly undersized account pool).
    pub fn build(self) -> Result<SpotLake, SpotLakeError> {
        let catalog = self.catalog.unwrap_or_else(Catalog::aws_2022);
        let sim_config = self.sim_config.unwrap_or_default();
        let collector_config = self.collector_config.unwrap_or_default();
        let collector = CollectorService::new(&catalog, collector_config)?;
        let cloud = SimCloud::new(catalog, sim_config);
        Ok(SpotLake {
            cloud,
            collector,
            gateway: Gateway::new(),
        })
    }
}

/// The assembled SpotLake service: cloud + collector + archive + web
/// service.
#[derive(Debug)]
pub struct SpotLake {
    cloud: SimCloud,
    collector: CollectorService,
    gateway: Gateway,
}

impl SpotLake {
    /// Starts building a pipeline.
    pub fn builder() -> SpotLakeBuilder {
        SpotLakeBuilder::default()
    }

    /// The simulated cloud.
    pub fn cloud(&self) -> &SimCloud {
        &self.cloud
    }

    /// Mutable access to the simulated cloud (experiments submit spot
    /// requests through this).
    pub fn cloud_mut(&mut self) -> &mut SimCloud {
        &mut self.cloud
    }

    /// The archive database.
    pub fn archive(&self) -> &Database {
        self.collector.database()
    }

    /// The query plan statistics (Figure 1).
    pub fn plan_stats(&self) -> PlanStats {
        self.collector.plan_stats()
    }

    /// Advances the cloud one tick and runs one collection round, `rounds`
    /// times.
    ///
    /// # Errors
    ///
    /// Returns [`SpotLakeError::Collect`] if collection fails.
    pub fn run_rounds(&mut self, rounds: u64) -> Result<CollectStats, SpotLakeError> {
        Ok(self.collector.run(&mut self.cloud, rounds)?)
    }

    /// Like [`SpotLake::run_rounds`], also returning every round's
    /// [`RoundHealth`] — the resilience telemetry under fault injection.
    ///
    /// # Errors
    ///
    /// Returns [`SpotLakeError::Collect`] if collection fails
    /// non-retryably.
    pub fn run_rounds_with_health(
        &mut self,
        rounds: u64,
    ) -> Result<(CollectStats, Vec<RoundHealth>), SpotLakeError> {
        Ok(self.collector.run_with_health(&mut self.cloud, rounds)?)
    }

    /// The collector service (breaker levers, dead-letter depth).
    pub fn collector(&self) -> &CollectorService {
        &self.collector
    }

    /// What startup recovery replayed, when the pipeline runs with a
    /// durable archive (`CollectorConfig::wal_dir`); `None` otherwise.
    pub fn recovery_report(&self) -> Option<&spotlake_collector::RecoveryReport> {
        self.collector.recovery_report()
    }

    /// Mutable access to the collector service.
    pub fn collector_mut(&mut self) -> &mut CollectorService {
        &mut self.collector
    }

    /// Serves one HTTP request against the archive.
    ///
    /// # Errors
    ///
    /// Returns [`SpotLakeError::Serve`] when the request string is
    /// malformed (handler-level failures come back as HTTP error
    /// responses, not `Err`).
    pub fn http_get(&self, path_and_query: &str) -> Result<HttpResponse, SpotLakeError> {
        let request = HttpRequest::get(path_and_query)?;
        let health = self.collector.health_report();
        let stats = self.collector.stats();
        let quality = self.collector.quality_report();
        let shard_health = self.collector.shard_health();
        let registries = [self.collector.metrics()];
        let ops = OpsContext {
            registries: &registries,
            health: Some(&health),
            collect: Some(&stats),
            last_round: self.collector.last_health(),
            tick: self.cloud.ticks(),
            // In-process requests have no wire-level id.
            request_id: 0,
            quality: Some(&quality),
            recovery: self.collector.recovery_report(),
            shards: shard_health.as_ref(),
        };
        Ok(self
            .gateway
            .handle(self.collector.database(), &request, &ops))
    }

    /// Renders the full `/metrics` document — collector, store, and
    /// gateway families — without going through the router (the CLI's
    /// `--metrics` path).
    pub fn metrics_text(&self) -> String {
        let registries = [
            self.collector.metrics(),
            self.collector.database().metrics(),
            self.gateway.http_metrics(),
        ];
        spotlake_obs::Registry::render_merged(registries)
    }

    /// Renders the collector's trace journal as JSON lines (the CLI's
    /// `--trace` path).
    pub fn trace_text(&self) -> String {
        self.collector.journal().render()
    }

    /// Renders the gateway's query trace journal as JSON lines — one root
    /// span per row query served, with per-stage cost children.
    pub fn query_trace_text(&self) -> String {
        self.gateway.query_trace_text()
    }

    /// Persists the archive to disk.
    ///
    /// # Errors
    ///
    /// Returns [`SpotLakeError::Store`] on I/O failure.
    pub fn save_archive(&self, path: impl AsRef<Path>) -> Result<(), SpotLakeError> {
        Ok(self.collector.database().save(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_types::CatalogBuilder;

    fn small() -> SpotLake {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .region("eu-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SpotLake::builder()
            .catalog(b.build().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_collect_and_serve() {
        let mut lake = small();
        let stats = lake.run_rounds(4).unwrap();
        assert_eq!(stats.rounds, 4);
        assert!(stats.sps_records > 0);

        let ok = lake
            .http_get("/query?table=sps&instance_type=m5.large")
            .unwrap();
        assert_eq!(ok.status, 200);
        assert!(ok.body_text().contains("m5.large"));

        // Handler-level failure is an HTTP error, not Err.
        let missing = lake.http_get("/query?table=zzz").unwrap();
        assert_eq!(missing.status, 404);
        // Parse-level failure is Err.
        assert!(lake.http_get("nonsense").is_err());
    }

    #[test]
    fn archive_persists() {
        let mut lake = small();
        lake.run_rounds(2).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("spotlake-pipeline-{}.db", std::process::id()));
        lake.save_archive(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.point_count(), lake.archive().point_count());
    }

    #[test]
    fn plan_stats_accessible() {
        let lake = small();
        assert!(lake.plan_stats().planned_queries > 0);
    }
}
