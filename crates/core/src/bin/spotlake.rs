//! The `spotlake` command-line tool.
//!
//! ```text
//! spotlake plan    [--strategy exact|ffd|bfd|naive]
//! spotlake collect --out FILE [--days N] [--tick-minutes N] [--types a,b,c]
//! spotlake get     --archive FILE PATH
//! spotlake experiment [--cases N] [--warmup-days N] [--history-days N]
//! ```
//!
//! `collect` runs the full pipeline and persists the archive — with
//! `--wal-dir` it commits every round through a write-ahead log first, so
//! a crash (or `--io-faults crash` injection) loses nothing that was
//! committed; `fsck` checks a WAL directory offline and reports what
//! recovery would do; `get` serves one gateway request (e.g.
//! `"/query?table=sps&instance_type=m5.large"`) against a saved archive;
//! `query` builds the row request from flags and, with `--explain`,
//! prints the query plan and per-stage cost profile instead of rows;
//! `plan` prints the Figure 1 query-plan numbers; `experiment` runs a
//! scaled-down Section 5.4 experiment and prints Tables 3 and 4;
//! `slo-eval` replays a dumped telemetry time-series through the SLO
//! engine offline and prints the same verdict document `/debug/slo`
//! serves.

use spotlake::experiment::{ExperimentConfig, FulfillmentExperiment};
use spotlake::prediction;
use spotlake::{CollectorConfig, SimCloud, SimConfig, SpotLake};
use spotlake_collector::{AccountPool, FaultPlan, IoFaultPlan, PlannerStrategy, QueryPlanner};
use spotlake_obs::{SloSet, SloTracker, TelemetrySample};
use spotlake_serving::server::{loadgen, ChaosProfile, LoadConfig, LoadMode};
use spotlake_serving::{ArchiveService, HttpRequest, Server, ServerConfig, SharedArchive};
use spotlake_timestream::{Database, ShardKey};
use spotlake_types::{Catalog, SimDuration};
use std::collections::HashMap;
use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "spotlake — diverse spot instance dataset archive service (reproduction)

USAGE:
  spotlake plan [--strategy exact|ffd|bfd|naive]
  spotlake collect --out FILE [--days N] [--tick-minutes N] [--types a,b,c] [--seed N]
                   [--faults none|light|moderate|heavy]
                   [--wal-dir DIR] [--checkpoint-every N] [--io-faults none|transient|crash]
                   [--shards] [--io-fault-shard DATASET/REGION] [--health]
                   [--metrics] [--trace FILE]
  spotlake fsck --wal-dir DIR [--repair]
  spotlake get --archive FILE PATH
  spotlake query --archive FILE --table NAME [--measure M] [--instance-type T]
                 [--region R] [--az Z] [--from N] [--to N] [--limit N] [--explain]
  spotlake experiment [--cases N] [--warmup-days N] [--history-days N] [--seed N]
  spotlake mc [--rounds N]
  spotlake serve --archive FILE [--addr HOST:PORT] [--workers N] [--queue-depth N]
                 [--deadline-ms N] [--read-timeout-ms N] [--write-timeout-ms N]
                 [--telemetry-interval-ms N] [--telemetry-capacity N]
  spotlake loadgen (--addr HOST:PORT | --archive FILE) [--seed N] [--clients N]
                   [--requests N] [--mode closed|open] [--interval-ms N]
                   [--chaos none|light|heavy] [--out FILE]
                   [--telemetry-out FILE] [--telemetry-interval-ms N]
  spotlake slo-eval --telemetry FILE
  spotlake help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Runs one command. `Ok(code)` is the process exit code — nonzero only
/// from `fsck`, whose verdict ladder (0 clean, 1 degraded, 2 corrupt or
/// quarantined) scripts branch on; every other command is 0-or-`Err`.
fn run(args: &[String]) -> Result<u8, String> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    let parsed = Args::parse(&args[1..])?;
    if command.as_str() == "fsck" {
        return cmd_fsck(&parsed);
    }
    match command.as_str() {
        "plan" => cmd_plan(&parsed),
        "collect" => cmd_collect(&parsed),
        "get" => cmd_get(&parsed),
        "query" => cmd_query(&parsed),
        "experiment" => cmd_experiment(&parsed),
        "mc" => cmd_mc(&parsed),
        "serve" => cmd_serve(&parsed),
        "loadgen" => cmd_loadgen(&parsed),
        "slo-eval" => cmd_slo_eval(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    }
    .map(|()| 0)
}

/// Parsed `--key value` flags plus positional arguments.
struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Flags that take no value (presence is the value).
const SWITCHES: [&str; 5] = ["metrics", "explain", "shards", "repair", "health"];

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    flags.insert(key.to_owned(), "true".to_owned());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.insert(key.to_owned(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be an integer, got {v:?}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let strategy = match args.get("strategy").unwrap_or("exact") {
        "exact" => PlannerStrategy::Exact,
        "ffd" => PlannerStrategy::Ffd,
        "bfd" => PlannerStrategy::Bfd,
        "naive" => PlannerStrategy::Naive,
        other => return Err(format!("unknown strategy: {other}")),
    };
    let catalog = Catalog::aws_2022();
    let (plan, stats) = QueryPlanner::new(strategy).plan_with_stats(&catalog, None);
    let all_pairs = catalog.instance_types().len() * catalog.regions().len();
    println!(
        "strategy {:<6} {} queries cover {} (type, region) pairs ({:.2}x fewer than the {} all-pairs scans)",
        strategy.name(),
        stats.planned_queries,
        stats.pairs_covered,
        all_pairs as f64 / stats.planned_queries as f64,
        all_pairs
    );
    println!(
        "accounts needed at 50 unique queries per day: {}",
        AccountPool::required_accounts(plan.len())
    );
    Ok(())
}

fn cmd_collect(args: &Args) -> Result<(), String> {
    let out = args.require("out")?.to_owned();
    let days = args.get_u64("days", 1)?;
    let tick_minutes = args.get_u64("tick-minutes", 30)?;
    if days == 0 || tick_minutes == 0 {
        return Err("--days and --tick-minutes must be at least 1".into());
    }
    let seed = args.get_u64("seed", 20_220_901)?;
    let type_filter: Option<Vec<String>> = args
        .get("types")
        .map(|v| v.split(',').map(str::to_owned).collect());
    let faults = match args.get("faults") {
        None => None,
        Some(profile) => Some(FaultPlan::profile(profile, seed).ok_or_else(|| {
            format!("unknown fault profile: {profile} (expected none, light, moderate, or heavy)")
        })?),
    };
    let wal_dir = args.get("wal-dir").map(std::path::PathBuf::from);
    let checkpoint_every = args.get_u64("checkpoint-every", 8)?;
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    let io_faults = match args.get("io-faults") {
        None => None,
        Some(profile) => Some(IoFaultPlan::profile(profile, seed).ok_or_else(|| {
            format!("unknown io-fault profile: {profile} (expected none, transient, or crash)")
        })?),
    };
    if io_faults.is_some() && wal_dir.is_none() {
        return Err("--io-faults needs --wal-dir (disk faults target the write-ahead log)".into());
    }
    let shards = args.get("shards").is_some();
    if shards && wal_dir.is_none() {
        return Err("--shards needs --wal-dir (shards are on-disk fault domains)".into());
    }
    let io_fault_shard = match args.get("io-fault-shard") {
        None => None,
        Some(spec) => Some(ShardKey::parse(spec).ok_or_else(|| {
            format!("bad --io-fault-shard {spec:?} (expected DATASET/REGION, e.g. sps/us-east-1)")
        })?),
    };
    if io_fault_shard.is_some() && !shards {
        return Err("--io-fault-shard needs --shards".into());
    }

    let sim = SimConfig {
        tick: SimDuration::from_mins(tick_minutes),
        ..SimConfig::with_seed(seed)
    };
    let mut lake = SpotLake::builder()
        .sim_config(sim)
        .collector_config(CollectorConfig {
            type_filter,
            faults,
            wal_dir,
            checkpoint_every,
            io_faults,
            shards,
            io_fault_shard,
            ..CollectorConfig::default()
        })
        .build()
        .map_err(|e| e.to_string())?;
    if let Some(report) = lake.recovery_report() {
        if report.recovered_anything() {
            eprintln!("{}", report.render());
        }
    }
    let rounds = days * 24 * 60 / tick_minutes;
    eprintln!(
        "collecting {days} simulated day(s) at a {tick_minutes}-minute tick ({rounds} rounds, {} planned queries/round)...",
        lake.plan_stats().planned_queries
    );
    let stats = lake.run_rounds(rounds).map_err(|e| e.to_string())?;
    lake.save_archive(&out).map_err(|e| e.to_string())?;
    // With --metrics, stdout carries the Prometheus document alone (so it
    // pipes straight into a scrape file); the human summary moves to stderr.
    let emit_metrics = args.get("metrics").is_some();
    let say = |line: String| {
        if emit_metrics {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    say(format!(
        "wrote {out}: {} sps, {} advisor, {} price records over {} rounds",
        stats.sps_records, stats.advisor_records, stats.price_records, stats.rounds
    ));
    if faults.is_some() {
        say(format!(
            "resilience: {} retries, {} failed operations, {} degraded rounds, {} dead-lettered queries ({} still queued)",
            stats.retries,
            stats.queries_failed,
            stats.degraded_rounds,
            stats.dead_lettered,
            lake.collector().dead_letter_depth()
        ));
    }
    if let Some(wal) = lake.collector().wal_stats() {
        say(format!(
            "durability: {} WAL frames appended ({} bytes), {} checkpoints, log now {} bytes",
            wal.frames_appended, wal.bytes_appended, wal.checkpoints, wal.wal_bytes
        ));
    }
    if let Some(h) = lake.collector().shard_health() {
        let impaired: Vec<String> = h
            .impaired()
            .map(|r| format!("{}/{} {}", r.dataset, r.region, r.state.as_str()))
            .collect();
        say(format!(
            "shards: {}/{} healthy{}",
            h.healthy(),
            h.total(),
            if impaired.is_empty() {
                String::new()
            } else {
                format!("; impaired: {}", impaired.join(", "))
            }
        ));
    }
    if emit_metrics {
        print!("{}", lake.metrics_text());
    }
    // With --health, stdout (additionally) carries the `/health` JSON
    // body — what the shard-loss drill greps for `degraded`.
    if args.get("health").is_some() {
        let response = lake.http_get("/health").map_err(|e| e.to_string())?;
        println!("{}", response.body_text());
    }
    if let Some(trace) = args.get("trace") {
        std::fs::write(trace, lake.trace_text())
            .map_err(|e| format!("cannot write trace {trace}: {e}"))?;
        eprintln!("wrote trace journal to {trace}");
    }
    Ok(())
}

/// `fsck`: offline integrity check of a durable archive directory. A
/// sharded root (it has a `shards.map` manifest) gets a per-shard
/// verdict table and the 0/1/2 exit ladder (clean / degraded /
/// corrupt-or-quarantined); `--repair` truncates every shard to its
/// committed prefix and clears quarantine markers, re-admitting the
/// shard on the next `collect --shards`. A single-WAL directory keeps
/// the original behaviour: print the report, exit nonzero when the
/// directory needs recovery.
fn cmd_fsck(args: &Args) -> Result<u8, String> {
    let dir = std::path::PathBuf::from(args.require("wal-dir")?);
    if spotlake_timestream::is_sharded_root(&dir) {
        let report = if args.get("repair").is_some() {
            spotlake_timestream::repair_shards(&dir)
        } else {
            spotlake_timestream::fsck_shards(&dir)
        }
        .map_err(|e| e.to_string())?;
        println!("{}", report.render());
        return Ok(report.exit_code());
    }
    if args.get("repair").is_some() {
        // Single-WAL repair is exactly startup recovery: truncate the
        // torn tail, drop stale temp files, keep the committed prefix.
        let (_db, report) = spotlake_timestream::recover(&dir).map_err(|e| e.to_string())?;
        println!("{}", report.render());
    }
    let report = spotlake_timestream::fsck(&dir).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    if report.clean() {
        Ok(0)
    } else {
        Err(format!(
            "{} needs recovery (run collect with --wal-dir, or fsck --repair)",
            dir.display()
        ))
    }
}

fn cmd_get(args: &Args) -> Result<(), String> {
    let archive = args.require("archive")?;
    let path = args
        .positional
        .first()
        .ok_or("missing request path, e.g. \"/query?table=sps\"")?;
    let db = Database::load(archive).map_err(|e| e.to_string())?;
    let request = HttpRequest::get(path).map_err(|e| e.to_string())?;
    let response = ArchiveService::handle(&db, &request);
    eprintln!("HTTP {} ({})", response.status, response.content_type);
    println!("{}", response.body_text());
    if response.status >= 400 {
        return Err(format!("request failed with status {}", response.status));
    }
    Ok(())
}

/// `query`: builds the `/query` request from flags — no hand-assembled
/// query strings — and serves it against a saved archive. With
/// `--explain`, the response is the executed plan plus the per-stage cost
/// profile instead of rows.
fn cmd_query(args: &Args) -> Result<(), String> {
    let archive = args.require("archive")?;
    let table = args.require("table")?;
    let mut path = format!("/query?table={table}");
    for (flag, param) in [
        ("measure", "measure"),
        ("instance-type", "instance_type"),
        ("region", "region"),
        ("az", "az"),
        ("from", "from"),
        ("to", "to"),
        ("limit", "limit"),
    ] {
        if let Some(v) = args.get(flag) {
            path.push_str(&format!("&{param}={v}"));
        }
    }
    if args.get("explain").is_some() {
        path.push_str("&explain=1");
    }
    let db = Database::load(archive).map_err(|e| e.to_string())?;
    let request = HttpRequest::get(&path).map_err(|e| e.to_string())?;
    let response = ArchiveService::handle(&db, &request);
    eprintln!("GET {path} -> HTTP {}", response.status);
    println!("{}", response.body_text());
    if response.status >= 400 {
        return Err(format!("request failed with status {}", response.status));
    }
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let cases = args.get_u64("cases", 30)? as usize;
    let warmup = args.get_u64("warmup-days", 10)?;
    let history = args.get_u64("history-days", 8)?;
    let seed = args.get_u64("seed", 0x5107_1a3e)?;

    let sim = SimConfig {
        tick: SimDuration::from_mins(20),
        shock_day: None,
        ..SimConfig::with_seed(seed)
    };
    let mut cloud = SimCloud::new(Catalog::aws_2022(), sim);
    eprintln!("warming up the advisor window ({warmup} simulated days)...");
    cloud.run_days(warmup);
    eprintln!("recording history and running the 24h experiment...");
    let (report, _) = FulfillmentExperiment::new(ExperimentConfig {
        cases_per_stratum: cases,
        history: SimDuration::from_days(history),
        seed,
        ..ExperimentConfig::default()
    })
    .run(&mut cloud);

    println!("Table 3 ({} cases):", report.cases.len());
    for row in report.table3() {
        println!(
            "  {}  n={:<4} not-fulfilled {:>6.2}%  interrupted {:>6.2}%",
            row.stratum.label(),
            row.cases,
            row.not_fulfilled_pct,
            row.interrupted_pct
        );
    }
    if report.cases.len() >= 10 {
        println!("\nTable 4:");
        for row in prediction::evaluate(&report.cases, seed).rows {
            println!(
                "  {:<10} accuracy {:.2}  F1 {:.2}",
                row.method, row.accuracy, row.f1
            );
        }
    }
    Ok(())
}

/// Builds a [`ServerConfig`] from the shared serving flags.
fn server_config_from(args: &Args) -> Result<ServerConfig, String> {
    let defaults = ServerConfig::default();
    let workers = args.get_u64("workers", defaults.workers as u64)? as usize;
    let queue_depth = args.get_u64("queue-depth", defaults.queue_depth as u64)? as usize;
    if workers == 0 || queue_depth == 0 {
        return Err("--workers and --queue-depth must be at least 1".into());
    }
    // 0 (the default) leaves the telemetry sampler off.
    let telemetry_ms = args.get_u64("telemetry-interval-ms", 0)?;
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_owned(),
        workers,
        queue_depth,
        deadline: Duration::from_millis(
            args.get_u64("deadline-ms", defaults.deadline.as_millis() as u64)?,
        ),
        read_timeout: Duration::from_millis(
            args.get_u64("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?,
        ),
        write_timeout: Duration::from_millis(args.get_u64(
            "write-timeout-ms",
            defaults.write_timeout.as_millis() as u64,
        )?),
        telemetry_interval: (telemetry_ms > 0).then(|| Duration::from_millis(telemetry_ms)),
        telemetry_capacity: args
            .get_u64("telemetry-capacity", defaults.telemetry_capacity as u64)?
            .max(1) as usize,
        ..defaults
    })
}

/// `serve`: load a saved archive and serve it over real TCP until stdin
/// reaches EOF, then drain gracefully and report what happened.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let archive = args.require("archive")?;
    let db = Database::load(archive).map_err(|e| e.to_string())?;
    let config = server_config_from(args)?;
    let handle = Server::start(SharedArchive::new(db), config).map_err(|e| e.to_string())?;
    // The address goes to stdout alone so scripts can capture it.
    println!("{}", handle.addr());
    eprintln!(
        "serving {archive} on {} — send EOF (ctrl-d) to stop",
        handle.addr()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let report = handle.shutdown();
    let t = report.totals;
    eprintln!(
        "drained: {} accepted, {} served, {} shed, {} deadline-exceeded, {} bad requests, {} slow clients closed, {} worker panics",
        t.accepted, t.served, t.shed, t.deadline_exceeded, t.bad_requests, t.slow_clients_closed, t.worker_panics
    );
    Ok(())
}

/// `loadgen`: drive a server (an external one via `--addr`, or a
/// self-served archive via `--archive`) with the seeded load/chaos plan
/// and write the `BENCH_serving.json` scoreboard.
fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let chaos = match args.get("chaos").unwrap_or("none") {
        "none" => ChaosProfile::None,
        "light" => ChaosProfile::Light,
        "heavy" => ChaosProfile::Heavy,
        other => return Err(format!("unknown chaos profile: {other}")),
    };
    let mode = match args.get("mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed,
        "open" => LoadMode::Open {
            interval: Duration::from_millis(args.get_u64("interval-ms", 10)?.max(1)),
        },
        other => return Err(format!("unknown mode: {other} (expected closed or open)")),
    };
    let load = LoadConfig {
        seed: args.get_u64("seed", 7)?,
        clients: args.get_u64("clients", 4)?.max(1) as usize,
        requests_per_client: args.get_u64("requests", 50)?.max(1) as usize,
        mode,
        chaos,
        ..LoadConfig::default()
    };
    let out = args.get("out").unwrap_or("BENCH_serving.json").to_owned();
    let telemetry_out = args.get("telemetry-out").map(str::to_owned);

    let (report, server_report, telemetry_jsonl) = match (args.get("addr"), args.get("archive")) {
        (Some(addr), _) => {
            let addr: SocketAddr = addr
                .parse()
                .map_err(|e| format!("bad --addr {addr:?}: {e}"))?;
            let report = loadgen::run(addr, &load);
            // An external server keeps its own ring buffer; pull it over
            // the wire when the caller wants the artifact.
            let telemetry = match &telemetry_out {
                Some(_) => match loadgen::fetch(addr, "/debug/telemetry", load.io_timeout) {
                    Ok((200, body)) => Some(body),
                    Ok((status, _)) => {
                        return Err(format!(
                            "--telemetry-out: server answered {status} for /debug/telemetry \
                             (was it started with --telemetry-interval-ms?)"
                        ))
                    }
                    Err(e) => return Err(format!("--telemetry-out: {e}")),
                },
                None => None,
            };
            (report, None, telemetry)
        }
        (None, Some(archive)) => {
            let db = Database::load(archive).map_err(|e| e.to_string())?;
            let mut config = server_config_from(args)?;
            // Asking for the telemetry artifact implies sampling.
            if telemetry_out.is_some() && config.telemetry_interval.is_none() {
                config.telemetry_interval = Some(Duration::from_millis(50));
            }
            let sampling = config.telemetry_interval.is_some();
            let handle =
                Server::start(SharedArchive::new(db), config).map_err(|e| e.to_string())?;
            eprintln!("self-serving {archive} on {}", handle.addr());
            let report = loadgen::run(handle.addr(), &load);
            if sampling {
                probe_slo_exemplars(handle.addr(), load.io_timeout)?;
            }
            let server = handle.shutdown();
            let telemetry = server.telemetry_jsonl.clone();
            (report, Some(server), telemetry)
        }
        (None, None) => return Err("loadgen needs --addr HOST:PORT or --archive FILE".into()),
    };

    // The SLO verdict must be a pure function of the telemetry stream:
    // replaying the dumped series offline has to reproduce the live
    // report byte for byte (exemplars excepted — those join the request
    // ring, which telemetry does not carry).
    if let (Some(server), Some(jsonl)) = (&server_report, &telemetry_jsonl) {
        if let Some(live) = &server.slo {
            let mut tracker = SloTracker::new(SloSet::serving_defaults());
            for sample in &TelemetrySample::parse_jsonl(jsonl)? {
                tracker.observe(sample);
            }
            let offline = tracker.report();
            if offline.samples == live.samples {
                let mut live = live.clone();
                for objective in &mut live.objectives {
                    objective.exemplar_request_ids.clear();
                }
                if live.render_json() != offline.render_json() {
                    return Err("slo offline replay disagrees with the live report".into());
                }
                eprintln!(
                    "slo offline replay agrees with the live report ({} samples)",
                    offline.samples
                );
            } else {
                // The ring evicted early samples, so the replay starts
                // mid-stream and counter deltas cannot line up.
                eprintln!(
                    "slo offline replay skipped: ring holds {} of {} samples",
                    offline.samples, live.samples
                );
            }
        }
    }

    let totals = server_report.as_ref().map(|r| r.totals);
    let phases = server_report
        .as_ref()
        .map(|r| r.phases.as_slice())
        .unwrap_or(&[]);
    let slo = server_report.as_ref().and_then(|r| r.slo.as_ref());
    let json = report.to_json(totals.as_ref(), phases, slo);
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("cannot write {out}: {e}"))?;
    if let Some(path) = &telemetry_out {
        let jsonl = telemetry_jsonl
            .ok_or_else(|| "--telemetry-out: the run produced no telemetry".to_owned())?;
        std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("telemetry time-series -> {path}");
    }
    eprintln!(
        "loadgen seed {}: {}/{} completed, {} io errors, p50 {:.0}us p90 {:.0}us p99 {:.0}us, {:.0} rps -> {out}",
        report.seed,
        report.completed,
        report.planned,
        report.io_errors,
        report.p50_micros,
        report.p90_micros,
        report.p99_micros,
        report.throughput_rps
    );
    println!("{json}");
    if let Some(totals) = totals {
        if totals.worker_panics > 0 {
            return Err(format!(
                "{} handler panic(s) surfaced as 500s during the run",
                totals.worker_panics
            ));
        }
    }
    Ok(())
}

/// Fetches `/debug/slo` from a live server and checks that every
/// exemplar request id the verdict cites resolves to a record at
/// `/debug/requests` — the join an operator would follow by hand.
fn probe_slo_exemplars(addr: SocketAddr, timeout: Duration) -> Result<(), String> {
    let (status, slo_body) = loadgen::fetch(addr, "/debug/slo", timeout)
        .map_err(|e| format!("/debug/slo probe: {e}"))?;
    if status != 200 {
        return Err(format!(
            "/debug/slo answered {status} with telemetry sampling on"
        ));
    }
    let ids = exemplar_ids(&slo_body);
    if ids.is_empty() {
        eprintln!("slo probe: no exemplars cited (every objective within budget)");
        return Ok(());
    }
    let (status, requests_body) = loadgen::fetch(addr, "/debug/requests", timeout)
        .map_err(|e| format!("/debug/requests probe: {e}"))?;
    if status != 200 {
        return Err(format!("/debug/requests answered {status}"));
    }
    for id in &ids {
        if !requests_body.contains(&format!("\"request_id\":{id},")) {
            return Err(format!(
                "exemplar request {id} cited by /debug/slo is missing from /debug/requests"
            ));
        }
    }
    eprintln!(
        "slo probe: {} exemplar id(s) resolved at /debug/requests",
        ids.len()
    );
    Ok(())
}

/// Pulls every id out of the `"exemplar_request_ids":[...]` arrays of a
/// `/debug/slo` body.
fn exemplar_ids(slo_body: &str) -> Vec<u64> {
    let needle = "\"exemplar_request_ids\":[";
    let mut ids = Vec::new();
    let mut rest = slo_body;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find(']').unwrap_or(0);
        for part in rest[..end].split(',') {
            if let Ok(id) = part.trim().parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// `slo-eval`: replay a dumped telemetry time-series (the JSONL that
/// `loadgen --telemetry-out` or `/debug/telemetry` produces) through
/// the SLO engine offline and print the verdict document. The replay
/// is deterministic — the same input always yields byte-identical
/// output — and matches the server's live `/debug/slo` except for
/// exemplars, which only the live request ring can supply.
fn cmd_slo_eval(args: &Args) -> Result<(), String> {
    let path = args.require("telemetry")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let samples = TelemetrySample::parse_jsonl(&text)?;
    let mut tracker = SloTracker::new(SloSet::serving_defaults());
    for sample in &samples {
        tracker.observe(sample);
    }
    let report = tracker.report();
    eprintln!(
        "replayed {} sample(s): verdict {} (worst state {})",
        report.samples,
        if report.healthy {
            "healthy"
        } else {
            "unhealthy"
        },
        report.worst_state().as_str()
    );
    println!("{}", report.render_json());
    Ok(())
}

/// The Section 7 multi-vendor comparison, as a command.
fn cmd_mc(args: &Args) -> Result<(), String> {
    let rounds = args.get_u64("rounds", 12)?;
    if rounds == 0 {
        return Err("--rounds must be at least 1".into());
    }
    let mut collector =
        spotlake_multicloud::MultiCloudCollector::demo_scale().map_err(|e| e.to_string())?;
    eprintln!("collecting {rounds} rounds from 3 vendors on a shared clock...");
    let totals = collector.run_rounds(rounds).map_err(|e| e.to_string())?;
    for s in &totals {
        println!(
            "{:<6} price {:>6}  availability {:>6}  eviction {:>6}",
            s.vendor.tag(),
            s.price_records,
            s.availability_records,
            s.eviction_records
        );
    }
    let report = collector.compare_vendors().map_err(|e| e.to_string())?;
    println!(
        "
cross-vendor rows on shapes offered by 2+ vendors:"
    );
    let contested = report.contested_shapes();
    for row in report.rows.iter().filter(|r| contested.contains(&r.shape)) {
        println!(
            "  {:<6} {:<14} savings {:>5.1}%  availability {}",
            row.vendor.tag(),
            row.shape,
            row.mean_savings_pct,
            row.mean_availability
                .map_or("n/a".to_owned(), |v| format!("{v:.2}")),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_and_positionals() {
        let args = Args::parse(&strings(&["--out", "a.db", "--days", "2", "/query"])).unwrap();
        assert_eq!(args.get("out"), Some("a.db"));
        assert_eq!(args.get_u64("days", 1).unwrap(), 2);
        assert_eq!(args.get_u64("tick-minutes", 30).unwrap(), 30);
        assert_eq!(args.positional, vec!["/query"]);
        assert!(args.require("missing").is_err());
    }

    #[test]
    fn parse_switches_take_no_value() {
        // `--metrics` is a switch: the following flag is not swallowed.
        let args = Args::parse(&strings(&["--metrics", "--days", "2"])).unwrap();
        assert_eq!(args.get("metrics"), Some("true"));
        assert_eq!(args.get_u64("days", 1).unwrap(), 2);
        // And it can end the argument list.
        let args = Args::parse(&strings(&["--out", "a.db", "--metrics"])).unwrap();
        assert_eq!(args.get("metrics"), Some("true"));
    }

    #[test]
    fn parse_rejects_dangling_flag_and_bad_numbers() {
        assert!(Args::parse(&strings(&["--out"])).is_err());
        let args = Args::parse(&strings(&["--days", "two"])).unwrap();
        assert!(args.get_u64("days", 1).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&[])).is_err());
        assert!(run(&strings(&["help"])).is_ok());
    }

    #[test]
    fn collect_rejects_zero_tick() {
        assert!(run(&strings(&[
            "collect",
            "--out",
            "x.db",
            "--tick-minutes",
            "0"
        ]))
        .is_err());
        assert!(run(&strings(&["collect", "--out", "x.db", "--days", "0"])).is_err());
    }

    #[test]
    fn collect_validates_fault_profile() {
        assert!(run(&strings(&[
            "collect",
            "--out",
            "x.db",
            "--faults",
            "apocalyptic"
        ]))
        .is_err());
        let mut out = std::env::temp_dir();
        out.push(format!("spotlake-cli-faults-{}.db", std::process::id()));
        let out_str = out.to_string_lossy().into_owned();
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
            "--faults",
            "moderate",
        ]))
        .unwrap();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn collect_accepts_metrics_switch_and_writes_trace() {
        let pid = std::process::id();
        let mut out = std::env::temp_dir();
        out.push(format!("spotlake-cli-obs-{pid}.db"));
        let mut trace = std::env::temp_dir();
        trace.push(format!("spotlake-cli-obs-{pid}.jsonl"));
        let out_str = out.to_string_lossy().into_owned();
        let trace_str = trace.to_string_lossy().into_owned();
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
            "--faults",
            "moderate",
            "--metrics",
            "--trace",
            &trace_str,
        ]))
        .unwrap();
        let journal = std::fs::read_to_string(&trace).unwrap();
        assert!(
            journal
                .lines()
                .any(|l| l.contains("\"kind\":\"span\"") && l.contains("\"name\":\"round\"")),
            "trace journal records round spans: {journal}"
        );
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn collect_with_wal_dir_is_durable_and_fsck_is_clean() {
        let pid = std::process::id();
        let mut out = std::env::temp_dir();
        out.push(format!("spotlake-cli-wal-{pid}.db"));
        let mut wal = std::env::temp_dir();
        wal.push(format!("spotlake-cli-wal-{pid}"));
        std::fs::remove_dir_all(&wal).ok();
        let out_str = out.to_string_lossy().into_owned();
        let wal_str = wal.to_string_lossy().into_owned();
        // io-faults without a wal-dir is a config error.
        assert!(run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--io-faults",
            "crash"
        ]))
        .is_err());
        assert!(run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--wal-dir",
            &wal_str,
            "--io-faults",
            "catastrophic"
        ]))
        .is_err());
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
            "--wal-dir",
            &wal_str,
            "--checkpoint-every",
            "2",
        ]))
        .unwrap();
        // The WAL directory passes fsck and a second collect recovers it.
        run(&strings(&["fsck", "--wal-dir", &wal_str])).unwrap();
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
            "--wal-dir",
            &wal_str,
        ]))
        .unwrap();
        assert!(run(&strings(&["fsck"])).is_err(), "fsck requires --wal-dir");
        std::fs::remove_file(&out).ok();
        std::fs::remove_dir_all(&wal).ok();
    }

    #[test]
    fn loadgen_self_serves_an_archive_and_writes_the_bench_file() {
        let pid = std::process::id();
        let mut out = std::env::temp_dir();
        out.push(format!("spotlake-cli-loadgen-{pid}.db"));
        let mut bench = std::env::temp_dir();
        bench.push(format!("spotlake-cli-loadgen-{pid}.json"));
        let mut telemetry = std::env::temp_dir();
        telemetry.push(format!("spotlake-cli-loadgen-{pid}.jsonl"));
        let out_str = out.to_string_lossy().into_owned();
        let bench_str = bench.to_string_lossy().into_owned();
        let telemetry_str = telemetry.to_string_lossy().into_owned();
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
        ]))
        .unwrap();
        run(&strings(&[
            "loadgen",
            "--archive",
            &out_str,
            "--clients",
            "2",
            "--requests",
            "8",
            "--seed",
            "11",
            "--out",
            &bench_str,
            "--telemetry-out",
            &telemetry_str,
            "--telemetry-interval-ms",
            "5",
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&bench).unwrap();
        assert!(json.contains("\"bench\":\"serving\""), "{json}");
        assert!(json.contains("\"version\":3"), "{json}");
        assert!(json.contains("\"planned\":16"), "{json}");
        assert!(json.contains("\"worker_panics\":0"), "{json}");
        assert!(json.contains("\"queue_wait_p99\":"), "{json}");
        // Sampling was on, so the scoreboard carries the SLO verdict.
        assert!(json.contains("\"slo\":{"), "{json}");
        assert!(json.contains("\"name\":\"availability\""), "{json}");
        assert!(json.contains("\"budget_remaining\":"), "{json}");
        // The telemetry artifact is JSONL with registry samples.
        let jsonl = std::fs::read_to_string(&telemetry).unwrap();
        let first = jsonl.lines().next().unwrap_or_default();
        assert!(first.starts_with("{\"seq\":0,"), "{first}");
        assert!(jsonl.contains("spotlake_server_requests_total"), "{jsonl}");
        // The offline evaluator replays that artifact; its verdict
        // document opens with the SLO schema header.
        run(&strings(&["slo-eval", "--telemetry", &telemetry_str])).unwrap();
        assert!(run(&strings(&["slo-eval"])).is_err());
        assert!(run(&strings(&[
            "slo-eval",
            "--telemetry",
            "/nonexistent/telemetry.jsonl"
        ]))
        .is_err());
        // Bad knobs are rejected before any socket work.
        assert!(run(&strings(&["loadgen", "--chaos", "cosmic"])).is_err());
        assert!(run(&strings(&["loadgen", "--mode", "sideways"])).is_err());
        assert!(run(&strings(&["loadgen"])).is_err());
        assert!(run(&strings(&["loadgen", "--addr", "not-an-address",])).is_err());
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&bench).ok();
        std::fs::remove_file(&telemetry).ok();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        assert!(run(&strings(&[
            "serve",
            "--archive",
            "nonexistent.db",
            "--workers",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn plan_command_runs() {
        run(&strings(&["plan", "--strategy", "ffd"])).unwrap();
        assert!(run(&strings(&["plan", "--strategy", "quantum"])).is_err());
    }

    #[test]
    fn mc_command_runs_and_validates() {
        assert!(run(&strings(&["mc", "--rounds", "0"])).is_err());
        run(&strings(&["mc", "--rounds", "1"])).unwrap();
    }

    #[test]
    fn collect_and_get_roundtrip() {
        let mut out = std::env::temp_dir();
        out.push(format!("spotlake-cli-{}.db", std::process::id()));
        let out_str = out.to_string_lossy().into_owned();
        run(&strings(&[
            "collect",
            "--out",
            &out_str,
            "--days",
            "1",
            "--tick-minutes",
            "240",
            "--types",
            "m5.large",
        ]))
        .unwrap();
        run(&strings(&[
            "get",
            "--archive",
            &out_str,
            "/query?table=sps&instance_type=m5.large&limit=3",
        ]))
        .unwrap();
        // A failing request propagates as an error.
        assert!(run(&strings(&[
            "get",
            "--archive",
            &out_str,
            "/query?table=zzz"
        ]))
        .is_err());
        // The query subcommand builds the same request from flags, with
        // and without --explain.
        run(&strings(&[
            "query",
            "--archive",
            &out_str,
            "--table",
            "sps",
            "--instance-type",
            "m5.large",
            "--limit",
            "3",
        ]))
        .unwrap();
        run(&strings(&[
            "query",
            "--archive",
            &out_str,
            "--table",
            "sps",
            "--instance-type",
            "m5.large",
            "--explain",
        ]))
        .unwrap();
        assert!(run(&strings(&["query", "--archive", &out_str])).is_err());
        std::fs::remove_file(&out).ok();
    }
}
