//! The spot-instance status prediction task of Section 5.5 (Table 4).
//!
//! Target classes: `NoInterrupt`, `Interrupted`, `NoFulfill`. Four methods
//! are compared:
//!
//! * **IF** — a heuristic over the current interruption-free score, with
//!   thresholds fit on the training split ("set ... empirically after
//!   numerous trials").
//! * **SPS** — the paper's fixed placement-score heuristic (3.0 →
//!   NoInterrupt, 2.0 → Interrupted, 1.0 → NoFulfill).
//! * **CostSave** — a threshold heuristic over the current savings
//!   percentage, thresholds fit like IF.
//! * **RF** — a random forest over features extracted from the archived
//!   month of score history — the method only SpotLake's historical
//!   archive makes possible.

use crate::experiment::ExperimentCase;
use spotlake_cloud_sim::RequestOutcome;
use spotlake_ml::metrics::{accuracy, f1_macro};
use spotlake_ml::{Dataset, RandomForest, ThresholdHeuristic};

/// Class indices used throughout the task.
pub const CLASS_NO_INTERRUPT: usize = 0;
/// Class index for interrupted requests.
pub const CLASS_INTERRUPTED: usize = 1;
/// Class index for never-fulfilled requests.
pub const CLASS_NO_FULFILL: usize = 2;
/// Number of target classes.
pub const N_CLASSES: usize = 3;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Method name (`IF`, `SPS`, `Cost Save`, `RF`).
    pub method: &'static str,
    /// Test-set accuracy.
    pub accuracy: f64,
    /// Test-set macro-averaged F1.
    pub f1: f64,
}

/// The full Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// Rows in the paper's column order: IF, SPS, Cost Save, RF.
    pub rows: Vec<MethodRow>,
    /// Training cases used.
    pub train_cases: usize,
    /// Test cases used.
    pub test_cases: usize,
}

impl PredictionReport {
    /// The row for a method name.
    pub fn row(&self, method: &str) -> Option<&MethodRow> {
        self.rows.iter().find(|r| r.method == method)
    }
}

fn label_of(outcome: RequestOutcome) -> usize {
    match outcome {
        RequestOutcome::NoInterrupt => CLASS_NO_INTERRUPT,
        RequestOutcome::Interrupted => CLASS_INTERRUPTED,
        RequestOutcome::NoFulfill => CLASS_NO_FULFILL,
    }
}

/// Summary statistics of one history vector.
fn history_features(series: &[f64]) -> [f64; 4] {
    if series.is_empty() {
        return [0.0; 4];
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = series.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let last = *series.last().expect("nonempty");
    [mean, min, var.sqrt(), last]
}

/// Extracts the RF feature row of one case: current scores plus the
/// trailing month's summary statistics of the SPS and IF histories.
pub fn feature_row(case: &ExperimentCase) -> Vec<f64> {
    let sps_h = history_features(&case.history.sps);
    let if_h = history_features(&case.history.if_score);
    let frac = |series: &[f64], pred: fn(f64) -> bool| {
        if series.is_empty() {
            0.0
        } else {
            series.iter().filter(|&&v| pred(v)).count() as f64 / series.len() as f64
        }
    };
    // How often the pool was comfortable (score 3) / starved (score 1)
    // over the whole month, and over the most recent week — the dip-rate
    // signals only the archive can provide.
    let frac_sps_high = frac(&case.history.sps, |v| v >= 3.0);
    let frac_sps_low = frac(&case.history.sps, |v| v <= 1.0);
    let week = case.history.sps.len() / 4;
    let recent = &case.history.sps[case.history.sps.len().saturating_sub(week.max(1))..];
    let recent_low = frac(recent, |v| v <= 1.0);
    // Run-length signals: how long the pool has *currently* been starved
    // (an ongoing outage dwarfs a transient dip — this is what separates
    // never-fulfilled low-score cases from quickly-fulfilled ones), and how
    // often the pool churns in and out of the comfortable band.
    let trailing_low_run = case
        .history
        .sps
        .iter()
        .rev()
        .take_while(|&&v| v <= 1.0)
        .count() as f64;
    let trailing_sub_high_run = case
        .history
        .sps
        .iter()
        .rev()
        .take_while(|&&v| v < 3.0)
        .count() as f64;
    let dip_transitions = case
        .history
        .sps
        .windows(2)
        .filter(|w| w[0] >= 3.0 && w[1] < 3.0)
        .count() as f64;
    vec![
        case.sps_at_submit,
        case.if_at_submit,
        case.savings_at_submit,
        sps_h[0],
        sps_h[1],
        sps_h[2],
        frac_sps_high,
        frac_sps_low,
        recent_low,
        trailing_low_run,
        trailing_sub_high_run,
        dip_transitions,
        if_h[0],
        if_h[1],
        if_h[2],
    ]
}

/// Names of the columns [`feature_row`] produces, for importance reports.
pub const FEATURE_NAMES: [&str; 15] = [
    "sps_current",
    "if_current",
    "savings_current",
    "sps_mean_30d",
    "sps_min_30d",
    "sps_std_30d",
    "frac_sps_high",
    "frac_sps_low",
    "recent_week_low",
    "trailing_low_run",
    "trailing_sub3_run",
    "dip_transitions",
    "if_mean_30d",
    "if_min_30d",
    "if_std_30d",
];

/// Fits the Table 4 random forest on all cases and reports permutation
/// feature importance — which archive signals the model actually uses.
/// Returns `(feature name, importance)` sorted descending.
pub fn feature_importance(cases: &[ExperimentCase], seed: u64) -> Vec<(&'static str, f64)> {
    let features: Vec<Vec<f64>> = cases.iter().map(feature_row).collect();
    let labels: Vec<usize> = cases.iter().map(|c| label_of(c.outcome)).collect();
    let data = Dataset::new(features, labels, N_CLASSES).expect("rows built uniformly");
    let forest = RandomForest::default().with_max_depth(10).fit(&data, seed);
    let importances = forest.permutation_importance(&data, 3, seed ^ 0xF00D);
    let mut named: Vec<(&'static str, f64)> =
        FEATURE_NAMES.iter().copied().zip(importances).collect();
    named.sort_by(|a, b| b.1.total_cmp(&a.1));
    named
}

/// Runs the Table 4 comparison over completed experiment cases.
///
/// Cases are split 70/30 (train/test) with `seed`; the IF and CostSave
/// thresholds are fit on the training split, the SPS heuristic is fixed,
/// and the random forest trains on the full feature rows.
///
/// # Panics
///
/// Panics if fewer than ten cases are supplied (the comparison would be
/// meaningless).
pub fn evaluate(cases: &[ExperimentCase], seed: u64) -> PredictionReport {
    assert!(
        cases.len() >= 10,
        "need at least 10 cases, got {}",
        cases.len()
    );

    let features: Vec<Vec<f64>> = cases.iter().map(feature_row).collect();
    let labels: Vec<usize> = cases.iter().map(|c| label_of(c.outcome)).collect();
    let data = Dataset::new(features, labels, N_CLASSES).expect("rows built uniformly");
    let (train, test) = data.split(0.3, seed);

    // Column indices into the feature row.
    const COL_SPS: usize = 0;
    const COL_IF: usize = 1;
    const COL_SAVE: usize = 2;
    let column =
        |d: &Dataset, col: usize| -> Vec<f64> { (0..d.len()).map(|i| d.row(i)[col]).collect() };

    let truth: Vec<usize> = test.labels().to_vec();
    let mut rows = Vec::with_capacity(4);

    // IF heuristic: thresholds fit on the training split.
    let if_heuristic = ThresholdHeuristic::fit(
        &column(&train, COL_IF),
        train.labels(),
        CLASS_NO_INTERRUPT,
        CLASS_INTERRUPTED,
        CLASS_NO_FULFILL,
    );
    let pred = if_heuristic.predict_all(&column(&test, COL_IF));
    rows.push(MethodRow {
        method: "IF",
        accuracy: accuracy(&truth, &pred),
        f1: f1_macro(&truth, &pred, N_CLASSES),
    });

    // SPS heuristic: the paper's fixed mapping.
    let sps_heuristic =
        ThresholdHeuristic::sps(CLASS_NO_INTERRUPT, CLASS_INTERRUPTED, CLASS_NO_FULFILL);
    let pred = sps_heuristic.predict_all(&column(&test, COL_SPS));
    rows.push(MethodRow {
        method: "SPS",
        accuracy: accuracy(&truth, &pred),
        f1: f1_macro(&truth, &pred, N_CLASSES),
    });

    // CostSave heuristic.
    let save_heuristic = ThresholdHeuristic::fit(
        &column(&train, COL_SAVE),
        train.labels(),
        CLASS_NO_INTERRUPT,
        CLASS_INTERRUPTED,
        CLASS_NO_FULFILL,
    );
    let pred = save_heuristic.predict_all(&column(&test, COL_SAVE));
    rows.push(MethodRow {
        method: "Cost Save",
        accuracy: accuracy(&truth, &pred),
        f1: f1_macro(&truth, &pred, N_CLASSES),
    });

    // Random forest over the archived history. A mild depth cap keeps the
    // forest from memorizing the (noisy) training outcomes — scikit-learn's
    // deeper default trees behave similarly thanks to its larger leaves.
    let forest = RandomForest::default().with_max_depth(10).fit(&train, seed);
    let pred = forest.predict_all(&test);
    rows.push(MethodRow {
        method: "RF",
        accuracy: accuracy(&truth, &pred),
        f1: f1_macro(&truth, &pred, N_CLASSES),
    });

    PredictionReport {
        rows,
        train_cases: train.len(),
        test_cases: test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{CaseHistory, ExperimentCase, Stratum};

    /// Synthetic cases where history is genuinely informative: outcome is
    /// driven by the hidden pool quality, which history reflects better
    /// than the single current value.
    fn synthetic_cases(n: usize) -> Vec<ExperimentCase> {
        (0..n)
            .map(|i| {
                let quality = (i % 10) as f64 / 9.0; // 0..=1
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5;
                let outcome = if quality > 0.7 {
                    RequestOutcome::NoInterrupt
                } else if quality > 0.3 {
                    RequestOutcome::Interrupted
                } else {
                    RequestOutcome::NoFulfill
                };
                let current_sps = (1.0 + 2.0 * (quality + noise * 0.8).clamp(0.0, 1.0)).round();
                let hist_mean = 1.0 + 2.0 * quality;
                ExperimentCase {
                    instance_type: format!("m5.{i}"),
                    az: "us-test-1a".into(),
                    region: "us-test-1".into(),
                    stratum: Stratum::HH,
                    sps_at_submit: current_sps,
                    if_at_submit: 2.0,
                    savings_at_submit: 60.0,
                    outcome,
                    fulfillment_latency_secs: None,
                    first_run_secs: None,
                    history: CaseHistory {
                        sps: vec![hist_mean; 20],
                        if_score: vec![2.0; 20],
                        savings: vec![60.0; 20],
                    },
                }
            })
            .collect()
    }

    #[test]
    fn rf_beats_current_value_heuristics_on_history_driven_outcomes() {
        let cases = synthetic_cases(300);
        let report = evaluate(&cases, 42);
        assert_eq!(report.rows.len(), 4);
        let rf = report.row("RF").unwrap();
        let sps = report.row("SPS").unwrap();
        assert!(
            rf.accuracy > sps.accuracy,
            "RF ({:.2}) should beat SPS ({:.2}) when history carries signal",
            rf.accuracy,
            sps.accuracy
        );
        for row in &report.rows {
            assert!((0.0..=1.0).contains(&row.accuracy), "{row:?}");
            assert!((0.0..=1.0).contains(&row.f1), "{row:?}");
        }
        assert_eq!(report.train_cases + report.test_cases, 300);
    }

    #[test]
    fn feature_row_width_is_stable() {
        let cases = synthetic_cases(3);
        let w = feature_row(&cases[0]).len();
        assert!(cases.iter().all(|c| feature_row(c).len() == w));
    }

    #[test]
    fn empty_history_features_are_zero() {
        let mut case = synthetic_cases(1).remove(0);
        case.history = CaseHistory::default();
        let row = feature_row(&case);
        assert_eq!(row.len(), 15);
        assert!(row[3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn evaluate_requires_enough_cases() {
        evaluate(&synthetic_cases(5), 0);
    }
}
