//! The real-world fulfillment/interruption experiments of Section 5.4.
//!
//! The paper sampled instance type × availability zone pairs stratified
//! over the five score combinations H-H, H-L, M-M, L-H, L-L (spot placement
//! score first, interruption-free score second, using only the exact values
//! 3.0 / 2.0 / 1.0), issued one *persistent* spot request per case with the
//! bid set to the on-demand price, and watched each request for 24 hours.
//!
//! [`FulfillmentExperiment::run`] reproduces that protocol against the
//! simulated cloud, with one addition that the paper got for free from its
//! live archive: before submitting, it records each candidate pool's score
//! history into a [`spotlake_timestream::Database`] for the preceding
//! month, so the Section 5.5 prediction task can train on archived history
//! exactly as the paper's random forest did.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spotlake_cloud_sim::{RequestOutcome, SimCloud};
use spotlake_timestream::{Database, Query, Record, TableOptions, WriteMode};
use spotlake_types::{AzId, InstanceTypeId, SimDuration, SimTime, SpotRequestConfig};
use std::collections::BTreeMap;

/// The five sampled score combinations (placement score level first,
/// interruption-free score level second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stratum {
    /// Placement 3.0, interruption-free 3.0.
    HH,
    /// Placement 3.0, interruption-free 1.0.
    HL,
    /// Placement 2.0, interruption-free 2.0.
    MM,
    /// Placement 1.0, interruption-free 3.0.
    LH,
    /// Placement 1.0, interruption-free 1.0.
    LL,
}

impl Stratum {
    /// All strata in the paper's presentation order.
    pub const ALL: [Stratum; 5] = [
        Stratum::HH,
        Stratum::HL,
        Stratum::MM,
        Stratum::LH,
        Stratum::LL,
    ];

    /// The paper's label, e.g. `"H-H"`.
    pub fn label(self) -> &'static str {
        match self {
            Stratum::HH => "H-H",
            Stratum::HL => "H-L",
            Stratum::MM => "M-M",
            Stratum::LH => "L-H",
            Stratum::LL => "L-L",
        }
    }

    /// Classifies a (placement score, interruption-free score) pair. Only
    /// the exact values the paper used (3.0 / 2.0 / 1.0) map to a stratum;
    /// everything else is unsampled.
    pub fn of(sps: f64, if_score: f64) -> Option<Stratum> {
        match (sps as u8, if_score) {
            (3, 3.0) => Some(Stratum::HH),
            (3, 1.0) => Some(Stratum::HL),
            (2, 2.0) => Some(Stratum::MM),
            (1, 3.0) => Some(Stratum::LH),
            (1, 1.0) => Some(Stratum::LL),
            _ => None,
        }
    }
}

impl std::fmt::Display for Stratum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Cases sampled per stratum (the paper's 503 total ≈ 100 per
    /// stratum).
    pub cases_per_stratum: usize,
    /// Observation window per request (the paper: 24 hours).
    pub duration: SimDuration,
    /// History recorded into the archive before submission (the paper's
    /// model uses "the historical spot placement score and interruption-free
    /// score of the preceding month").
    pub history: SimDuration,
    /// Cadence at which candidate history is sampled into the archive
    /// (coarser than the simulation tick keeps the superset affordable).
    pub record_every: SimDuration,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            cases_per_stratum: 101,
            duration: SimDuration::from_hours(24),
            history: SimDuration::from_days(30),
            record_every: SimDuration::from_hours(4),
            seed: 0x5107_1a3e,
        }
    }
}

/// The recorded score history of one case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaseHistory {
    /// Placement-score samples over the history window, oldest first.
    pub sps: Vec<f64>,
    /// Interruption-free score samples (step-sampled at the same times).
    pub if_score: Vec<f64>,
    /// Savings samples.
    pub savings: Vec<f64>,
}

/// One completed experiment case.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCase {
    /// Instance type name.
    pub instance_type: String,
    /// Availability-zone name.
    pub az: String,
    /// Region code.
    pub region: String,
    /// Stratum at submission time.
    pub stratum: Stratum,
    /// Placement score at submission.
    pub sps_at_submit: f64,
    /// Interruption-free score at submission.
    pub if_at_submit: f64,
    /// Advisor savings percentage at submission.
    pub savings_at_submit: f64,
    /// Final outcome after the observation window.
    pub outcome: RequestOutcome,
    /// Seconds from submission to first fulfillment, if fulfilled.
    pub fulfillment_latency_secs: Option<f64>,
    /// Seconds the first fulfilled run lasted before interruption, if
    /// interrupted.
    pub first_run_secs: Option<f64>,
    /// The case's archived score history.
    pub history: CaseHistory,
}

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The stratum.
    pub stratum: Stratum,
    /// Cases in the stratum.
    pub cases: usize,
    /// Percentage never fulfilled within the window.
    pub not_fulfilled_pct: f64,
    /// Percentage interrupted at least once.
    pub interrupted_pct: f64,
}

/// The experiment's full results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// All completed cases.
    pub cases: Vec<ExperimentCase>,
    /// When the requests were submitted.
    pub submitted_at: SimTime,
}

impl ExperimentReport {
    /// Table 3: not-fulfilled and interrupted percentages per stratum.
    pub fn table3(&self) -> Vec<Table3Row> {
        Stratum::ALL
            .iter()
            .map(|&stratum| {
                let cases: Vec<_> = self.cases.iter().filter(|c| c.stratum == stratum).collect();
                let n = cases.len();
                let not_fulfilled = cases
                    .iter()
                    .filter(|c| c.outcome == RequestOutcome::NoFulfill)
                    .count();
                let interrupted = cases
                    .iter()
                    .filter(|c| c.outcome == RequestOutcome::Interrupted)
                    .count();
                Table3Row {
                    stratum,
                    cases: n,
                    not_fulfilled_pct: pct(not_fulfilled, n),
                    interrupted_pct: pct(interrupted, n),
                }
            })
            .collect()
    }

    /// Fulfillment latencies (seconds) of a stratum's fulfilled cases —
    /// Figure 11a's samples.
    pub fn fulfillment_latencies(&self, stratum: Stratum) -> Vec<f64> {
        self.cases
            .iter()
            .filter(|c| c.stratum == stratum)
            .filter_map(|c| c.fulfillment_latency_secs)
            .collect()
    }

    /// First-run durations (seconds) of a stratum's interrupted cases —
    /// Figure 11b's samples.
    pub fn run_durations(&self, stratum: Stratum) -> Vec<f64> {
        self.cases
            .iter()
            .filter(|c| c.stratum == stratum && c.outcome == RequestOutcome::Interrupted)
            .filter_map(|c| c.first_run_secs)
            .collect()
    }
}

fn pct(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// The Section 5.4 experiment driver.
#[derive(Debug, Clone, Default)]
pub struct FulfillmentExperiment {
    config: ExperimentConfig,
}

impl FulfillmentExperiment {
    /// Creates the driver.
    pub fn new(config: ExperimentConfig) -> Self {
        FulfillmentExperiment { config }
    }

    /// Runs the full protocol against `cloud`:
    ///
    /// 1. record every pool's score history into an archive database for
    ///    the configured history window — exactly what the live SpotLake
    ///    service archives continuously,
    /// 2. stratify the fleet at submission time and under-sample every
    ///    stratum to the size of the smallest (the paper's stratified
    ///    under-sampling), preferring cheaper instance types as the paper's
    ///    budget note describes,
    /// 3. submit one persistent spot request per case with the bid at the
    ///    on-demand price, and
    /// 4. observe for the configured duration.
    ///
    /// Returns the report and the archive of recorded case history.
    pub fn run(&self, cloud: &mut SimCloud) -> (ExperimentReport, Database) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let candidates: Vec<(InstanceTypeId, AzId)> = cloud
            .pool_ids()
            .map(|pid| {
                let p = cloud.pool(pid).params();
                (p.ty, p.az)
            })
            .collect();
        let db = self.record_history(cloud, &candidates);
        let (cases, submitted_at) = self.submit_and_observe(cloud, candidates, &db, &mut rng);
        (
            ExperimentReport {
                cases,
                submitted_at,
            },
            db,
        )
    }

    /// Records the candidates' scores into an archive for the history
    /// window.
    fn record_history(
        &self,
        cloud: &mut SimCloud,
        candidates: &[(InstanceTypeId, AzId)],
    ) -> Database {
        let mut db = Database::new();
        db.create_table(
            "case_sps",
            TableOptions {
                mode: WriteMode::Dense,
                retention: None,
            },
        )
        .expect("fresh database");
        db.create_table(
            "case_advisor",
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )
        .expect("fresh database");

        let ticks = self.config.history.div_duration(cloud.config().tick);
        let record_every = self.config.record_every.as_secs().max(1);
        let mut last_recorded: Option<u64> = None;
        for _ in 0..ticks {
            cloud.step();
            let now = cloud.now().as_secs();
            if last_recorded.is_some_and(|t| now - t < record_every) {
                continue;
            }
            last_recorded = Some(now);
            let mut records = Vec::with_capacity(candidates.len());
            let mut advisor_records = Vec::new();
            for (i, &(ty, az)) in candidates.iter().enumerate() {
                let pool = cloud
                    .pool_id(ty, az)
                    .map(|pid| cloud.pool(pid))
                    .expect("candidates come from existing pools");
                records.push(
                    Record::new(now, "sps", f64::from(pool.score_for(1)))
                        .dimension("case", i.to_string()),
                );
                let region = cloud.catalog().az(az).region();
                if let Some(entry) = cloud.advisor_entry(ty, region) {
                    advisor_records.push(
                        Record::new(
                            now,
                            "if_score",
                            entry.bucket.interruption_free_score().as_f64(),
                        )
                        .dimension("case", i.to_string()),
                    );
                    advisor_records.push(
                        Record::new(now, "savings", f64::from(entry.savings.percent()))
                            .dimension("case", i.to_string()),
                    );
                }
            }
            db.write("case_sps", &records).expect("valid records");
            db.write("case_advisor", &advisor_records)
                .expect("valid records");
        }
        db
    }

    /// Re-stratifies, under-samples, submits, and observes.
    fn submit_and_observe(
        &self,
        cloud: &mut SimCloud,
        candidates: Vec<(InstanceTypeId, AzId)>,
        db: &Database,
        rng: &mut StdRng,
    ) -> (Vec<ExperimentCase>, SimTime) {
        let catalog = cloud.catalog().clone();
        // (candidate index, type, AZ, sps, if-score, savings) of a case
        // eligible at submission time.
        type Candidate = (usize, InstanceTypeId, AzId, f64, f64, f64);
        // Re-stratify at submission time.
        let mut by_stratum: BTreeMap<Stratum, Vec<Candidate>> = BTreeMap::new();
        for (i, &(ty, az)) in candidates.iter().enumerate() {
            let pool = cloud
                .pool_id(ty, az)
                .map(|pid| cloud.pool(pid))
                .expect("candidates come from existing pools");
            let region = catalog.az(az).region();
            let Some(entry) = cloud.advisor_entry(ty, region) else {
                continue;
            };
            let sps = f64::from(pool.score_for(1));
            let if_score = entry.bucket.interruption_free_score().as_f64();
            if let Some(stratum) = Stratum::of(sps, if_score) {
                by_stratum.entry(stratum).or_default().push((
                    i,
                    ty,
                    az,
                    sps,
                    if_score,
                    f64::from(entry.savings.percent()),
                ));
            }
        }

        // Stratified under-sampling to the smallest stratum.
        let n = by_stratum
            .values()
            .map(Vec::len)
            .min()
            .unwrap_or(0)
            .min(self.config.cases_per_stratum);
        let mut selected = Vec::new();
        for (stratum, mut list) in by_stratum {
            // "Smaller and less expensive instance types were preferred
            // where applicable to keep the experimental cost within our
            // budget": keep the cheaper half when plentiful.
            list.sort_by_key(|&(_, ty, _, _, _, _)| catalog.od_price(ty).micros());
            if list.len() > n * 2 {
                list.truncate(list.len() / 2);
            }
            list.shuffle(rng);
            list.truncate(n);
            for item in list {
                selected.push((stratum, item));
            }
        }

        // Submit one persistent request per case, bid = on-demand price.
        let submitted_at = cloud.now();
        let mut live = Vec::with_capacity(selected.len());
        for &(stratum, (case_idx, ty, az, sps, if_s, savings)) in &selected {
            let od = catalog.od_price_in(ty, catalog.az(az).region());
            let bid = spotlake_types::SpotPrice::from_micros(od.micros())
                .expect("on-demand prices are positive");
            let request = cloud
                .submit_request(SpotRequestConfig {
                    instance_type: ty,
                    az,
                    bid,
                    count: 1,
                    persistent: true,
                })
                .expect("candidate pools exist");
            live.push((stratum, case_idx, ty, az, sps, if_s, savings, request));
        }

        // Observe.
        let ticks = self.config.duration.div_duration(cloud.config().tick);
        cloud.run_ticks(ticks);

        // Harvest.
        let mut cases = Vec::with_capacity(live.len());
        for (stratum, case_idx, ty, az, sps, if_s, savings, request_id) in live {
            let request = cloud.request(request_id).expect("request was submitted");
            let outcome = RequestOutcome::of(request);
            let history = extract_history(db, case_idx);
            cases.push(ExperimentCase {
                instance_type: catalog.ty(ty).name(),
                az: catalog.az(az).name().to_owned(),
                region: catalog.region(catalog.az(az).region()).code().to_owned(),
                stratum,
                sps_at_submit: sps,
                if_at_submit: if_s,
                savings_at_submit: savings,
                outcome,
                fulfillment_latency_secs: request.fulfillment_latency().map(|d| d.as_secs() as f64),
                first_run_secs: request.first_run_duration().map(|d| d.as_secs() as f64),
                history,
            });
        }
        (cases, submitted_at)
    }
}

/// Reads one case's recorded history back out of the archive.
fn extract_history(db: &Database, case_idx: usize) -> CaseHistory {
    let case = case_idx.to_string();
    let sps_rows = db
        .query("case_sps", &Query::measure("sps").filter("case", &case))
        .expect("table exists");
    let sample_times: Vec<u64> = sps_rows.iter().map(|r| r.time).collect();
    let sps: Vec<f64> = sps_rows.iter().map(|r| r.value).collect();

    let if_rows = db
        .query(
            "case_advisor",
            &Query::measure("if_score").filter("case", &case),
        )
        .expect("table exists");
    let if_series: Vec<(u64, f64)> = if_rows.iter().map(|r| (r.time, r.value)).collect();
    let if_score = spotlake_analysis::resample_step(&if_series, &sample_times);

    let savings_rows = db
        .query(
            "case_advisor",
            &Query::measure("savings").filter("case", &case),
        )
        .expect("table exists");
    let savings_series: Vec<(u64, f64)> = savings_rows.iter().map(|r| (r.time, r.value)).collect();
    let savings = spotlake_analysis::resample_step(&savings_series, &sample_times);

    CaseHistory {
        sps,
        if_score,
        savings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    #[test]
    fn stratum_mapping() {
        assert_eq!(Stratum::of(3.0, 3.0), Some(Stratum::HH));
        assert_eq!(Stratum::of(3.0, 1.0), Some(Stratum::HL));
        assert_eq!(Stratum::of(2.0, 2.0), Some(Stratum::MM));
        assert_eq!(Stratum::of(1.0, 3.0), Some(Stratum::LH));
        assert_eq!(Stratum::of(1.0, 1.0), Some(Stratum::LL));
        // Half-step advisor values and mixed pairs are unsampled.
        assert_eq!(Stratum::of(3.0, 2.5), None);
        assert_eq!(Stratum::of(2.0, 3.0), None);
        assert_eq!(Stratum::of(1.0, 2.0), None);
        assert_eq!(Stratum::ALL[0].label(), "H-H");
    }

    fn experiment_cloud() -> SimCloud {
        // A catalog mixing plentiful and scarce types so several strata
        // are populated.
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3).region("eu-test-1", 3);
        for (name, price) in [
            ("m5.large", 0.096),
            ("c5.large", 0.085),
            ("r5.large", 0.126),
            ("g4dn.xlarge", 0.526),
            ("p3.2xlarge", 3.06),
            ("p2.xlarge", 0.9),
            ("x1.16xlarge", 6.669),
            ("inf1.xlarge", 0.228),
            ("f1.2xlarge", 1.65),
            ("d2.xlarge", 0.69),
        ] {
            b.instance_type(name, price);
        }
        let config = SimConfig {
            tick: SimDuration::from_hours(2),
            ..SimConfig::default()
        };
        SimCloud::new(b.build().unwrap(), config)
    }

    #[test]
    fn experiment_runs_end_to_end() {
        let mut cloud = experiment_cloud();
        cloud.run_days(3); // advisor warmup
        let config = ExperimentConfig {
            cases_per_stratum: 4,
            history: SimDuration::from_days(4),
            ..ExperimentConfig::default()
        };
        let (report, db) = FulfillmentExperiment::new(config).run(&mut cloud);

        assert!(!report.cases.is_empty(), "no experiment cases sampled");
        // Under-sampling: every populated stratum has the same case count.
        let rows = report.table3();
        let sizes: Vec<usize> = rows.iter().map(|r| r.cases).filter(|&n| n > 0).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");

        for case in &report.cases {
            assert!(!case.history.sps.is_empty(), "history recorded");
            assert_eq!(case.history.sps.len(), case.history.if_score.len());
            if case.outcome == RequestOutcome::NoFulfill {
                assert_eq!(case.fulfillment_latency_secs, None);
            } else {
                assert!(case.fulfillment_latency_secs.is_some());
            }
        }
        assert!(db.point_count() > 0);
    }

    #[test]
    fn table3_percentages_are_consistent() {
        let mut cloud = experiment_cloud();
        cloud.run_days(3);
        let config = ExperimentConfig {
            cases_per_stratum: 3,
            history: SimDuration::from_days(2),
            ..ExperimentConfig::default()
        };
        let (report, _) = FulfillmentExperiment::new(config).run(&mut cloud);
        for row in report.table3() {
            assert!((0.0..=100.0).contains(&row.not_fulfilled_pct));
            assert!((0.0..=100.0).contains(&row.interrupted_pct));
        }
        // Figure 11 samples only come from the right outcome classes.
        for stratum in Stratum::ALL {
            for lat in report.fulfillment_latencies(stratum) {
                assert!(lat >= 0.0);
            }
            for dur in report.run_durations(stratum) {
                assert!(dur > 0.0);
            }
        }
    }
}
