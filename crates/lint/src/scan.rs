//! Lexical pass: strips comments and string literals out of Rust source
//! so rule checks never match inside either, while keeping comment text
//! (for `lint:allow` directives) and string values (for the metrics
//! contract) attributed to their lines.
//!
//! This is a hand-rolled character state machine, not a parser — the
//! vendored dependency set has no `syn`, and the rules only need token
//! shapes: brace depth, identifiers, and which bytes are code at all.

/// One source line after stripping.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and string/char contents blanked
    /// (delimiting quotes kept, so token boundaries survive).
    pub code: String,
    /// Comment text on the line, `//` and `/* */` alike.
    pub comment: String,
}

/// The stripped view of one file.
#[derive(Debug, Default)]
pub struct Stripped {
    /// Per-line code and comment text, in order.
    pub lines: Vec<Line>,
    /// Complete string-literal values with the 1-based line each starts on.
    pub strings: Vec<(usize, String)>,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    /// `raw_hashes` is `Some(n)` inside `r#…"` strings with `n` hashes.
    Str {
        raw_hashes: Option<u32>,
    },
}

/// Splits `source` into blanked code, comments, and string values.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Stripped::default();
    let mut cur = Line::default();
    let mut cur_str = String::new();
    let mut str_start_line = 0usize;
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            out.lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str { raw_hashes: None };
                    cur.code.push('"');
                    cur_str.clear();
                    str_start_line = out.lines.len() + 1;
                    i += 1;
                    continue;
                }
                // Raw and byte string prefixes: r".."  r#".."#  b".."  br#".."#
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    let mut j = i;
                    if chars.get(j) == Some(&'b') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    let mut raw = false;
                    if chars.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if chars.get(j) == Some(&'"') && (raw || c == 'b') {
                        for &p in chars.get(i..j).unwrap_or(&[]) {
                            cur.code.push(p);
                        }
                        cur.code.push('"');
                        state = State::Str {
                            raw_hashes: raw.then_some(hashes),
                        };
                        cur_str.clear();
                        str_start_line = out.lines.len() + 1;
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    let next = chars.get(i + 1).copied();
                    let is_lifetime = match next {
                        Some(ch) if ch.is_alphabetic() || ch == '_' => {
                            chars.get(i + 2) != Some(&'\'')
                        }
                        _ => false,
                    };
                    if is_lifetime {
                        cur.code.push('\'');
                        i += 1;
                        continue;
                    }
                    // Char literal: consume through the closing quote.
                    cur.code.push('\'');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    if i < chars.len() {
                        cur.code.push('\'');
                        i += 1;
                    }
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => {
                if c == '\\' {
                    if let Some(&esc) = chars.get(i + 1) {
                        cur_str.push('\\');
                        cur_str.push(esc);
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    out.strings
                        .push((str_start_line, std::mem::take(&mut cur_str)));
                    state = State::Code;
                    i += 1;
                } else {
                    cur_str.push(c);
                    i += 1;
                }
            }
            State::Str {
                raw_hashes: Some(hashes),
            } => {
                let closes =
                    c == '"' && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                if closes {
                    cur.code.push('"');
                    out.strings
                        .push((str_start_line, std::mem::take(&mut cur_str)));
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_str.push(c);
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        out.lines.push(cur);
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| chars.get(p))
        .is_some_and(|&c| c.is_alphanumeric() || c == '_')
}

/// Whether `code[idx..]` starts with `pat` at an identifier boundary on
/// both sides (ASCII identifier chars).
pub fn word_at(code: &str, idx: usize, pat: &str) -> bool {
    if !code[idx..].starts_with(pat) {
        return false;
    }
    let before_ok = idx == 0
        || !code[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = idx + pat.len();
    let after_ok = !code[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All byte offsets where `pat` occurs in `code` as a whole word.
pub fn word_occurrences(code: &str, pat: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let idx = from + rel;
        if word_at(code, idx, pat) {
            found.push(idx);
        }
        from = idx + pat.len().max(1);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let s = strip("let x = \"a // b\"; // real comment\n");
        assert_eq!(s.lines.len(), 1);
        assert_eq!(s.lines[0].code.trim(), "let x = \"\";");
        assert_eq!(s.lines[0].comment.trim(), "real comment");
        assert_eq!(s.strings, vec![(1, "a // b".to_owned())]);
    }

    #[test]
    fn raw_and_byte_strings_blank() {
        let s = strip("let m = br#\"magic \"quoted\" ]\"#; let n = b\"x\";\n");
        assert!(s.lines[0].code.contains("br#\"\""), "{}", s.lines[0].code);
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].1, "magic \"quoted\" ]");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = strip("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert!(s.lines[0].code.contains("<'a>"));
        assert!(s.lines[0].code.contains("''"));
    }

    #[test]
    fn block_comments_nest() {
        let s = strip("a /* x /* y */ z */ b\n");
        assert_eq!(s.lines[0].code.replace(' ', ""), "ab");
    }

    #[test]
    fn word_boundaries() {
        assert!(word_at("use HashMap;", 4, "HashMap"));
        assert!(!word_at("use MyHashMap;", 6, "HashMap"));
        assert_eq!(
            word_occurrences("HashMap HashMapX HashMap", "HashMap").len(),
            2
        );
    }
}
