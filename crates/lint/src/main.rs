//! CLI for the workspace invariant checker.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use spotlake_lint::{analyze_file, analyze_workspace, render_json, Finding, RULES};

const USAGE: &str = "\
spotlake-lint — workspace invariant checker

USAGE:
    cargo run -p spotlake-lint [-- OPTIONS]

OPTIONS:
    --root DIR           workspace root to scan (default: auto-detected)
    --json PATH          also write the JSON report to PATH ('-' = stdout)
    --check-file FILE    lint a single file instead of the workspace
    --as-crate NAME      crate name the file is analyzed as (with --check-file)
    --as-path PATH       repo-relative path used in diagnostics (with --check-file)
    --list-rules         print the rule table and exit
    --help               print this help
";

struct Opts {
    root: Option<PathBuf>,
    json: Option<String>,
    check_file: Option<PathBuf>,
    as_crate: Option<String>,
    as_path: Option<String>,
    list_rules: bool,
}

fn parse_args(mut args: std::env::Args) -> Result<Opts, String> {
    let _argv0 = args.next();
    let mut opts = Opts {
        root: None,
        json: None,
        check_file: None,
        as_crate: None,
        as_path: None,
        list_rules: false,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--root" => opts.root = Some(PathBuf::from(value("--root")?)),
            "--json" => opts.json = Some(value("--json")?),
            "--check-file" => opts.check_file = Some(PathBuf::from(value("--check-file")?)),
            "--as-crate" => opts.as_crate = Some(value("--as-crate")?),
            "--as-path" => opts.as_path = Some(value("--as-path")?),
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory looking for a `Cargo.toml` that
/// declares `[workspace]`; falls back to this crate's `../..`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run() -> Result<Vec<Finding>, String> {
    let opts = parse_args(std::env::args())?;

    if opts.list_rules {
        for (name, desc) in RULES {
            println!("{name:<17} {desc}");
        }
        return Ok(Vec::new());
    }

    let findings = if let Some(file) = &opts.check_file {
        let crate_name = opts.as_crate.clone().unwrap_or_default();
        let rel = opts
            .as_path
            .clone()
            .unwrap_or_else(|| file.to_string_lossy().into_owned());
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        analyze_file(&crate_name, &rel, &source)
    } else {
        let root = opts.root.clone().unwrap_or_else(find_root);
        analyze_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?
    };

    for f in &findings {
        println!("{}", f.render_text());
    }
    if findings.is_empty() {
        eprintln!("spotlake-lint: clean");
    } else {
        eprintln!("spotlake-lint: {} finding(s)", findings.len());
    }

    if let Some(dest) = &opts.json {
        let doc = render_json(&findings);
        if dest == "-" {
            println!("{doc}");
        } else {
            std::fs::write(dest, doc).map_err(|e| format!("writing {dest}: {e}"))?;
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    match run() {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("spotlake-lint: error: {msg}");
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
