//! Diagnostic rendering: human-readable text and machine-readable JSON.

/// One rule violation, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `determinism`.
    pub rule: String,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and what to use instead.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` — the compiler-style text form.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The full report as a stable JSON document:
/// `{"version":1,"findings":[…],"total":N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(&f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!("],\"total\":{}}}", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "determinism".into(),
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "wall clock \"now\"".into(),
        }
    }

    #[test]
    fn text_form_is_compiler_style() {
        assert_eq!(
            sample().render_text(),
            "crates/x/src/lib.rs:7: [determinism] wall clock \"now\""
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let doc = render_json(&[sample()]);
        assert!(doc.starts_with("{\"version\":1,"));
        assert!(doc.contains("\\\"now\\\""));
        assert!(doc.ends_with("\"total\":1}"));
    }

    #[test]
    fn json_empty_report() {
        assert_eq!(
            render_json(&[]),
            "{\"version\":1,\"findings\":[],\"total\":0}"
        );
    }
}
