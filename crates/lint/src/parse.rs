//! Structural pass: a line-attributed token stream and brace-matched
//! function-body recovery, built on the lexical strip from [`crate::scan`].
//!
//! The per-line scanner the first lint PR shipped cannot see a lock guard
//! that outlives its line or two functions acquiring the same pair of
//! locks in opposite orders. This module recovers just enough structure
//! for those questions — tokens with line numbers, matched brace trees,
//! function boundaries, and `#[cfg(test)]` regions — while staying a
//! hand-rolled, dependency-free token matcher (no `syn`), like the rest
//! of the checker.

use crate::scan::Stripped;

/// One token of blanked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (alphanumeric/underscore run).
    Ident(String),
    /// A single non-whitespace symbol character.
    Sym(char),
}

/// A token with the 1-based source line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// 1-based source line.
    pub line: usize,
    /// The token itself.
    pub tok: Tok,
}

impl SpannedTok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Sym(_) => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Whether this token is the symbol `c`.
    pub fn is_sym(&self, c: char) -> bool {
        matches!(self.tok, Tok::Sym(s) if s == c)
    }
}

/// Tokenizes blanked code into identifiers and symbols with line
/// numbers. Whitespace is dropped; string/char contents were already
/// blanked by [`crate::scan::strip`], so only their delimiters appear.
pub fn tokenize(stripped: &Stripped) -> Vec<SpannedTok> {
    let mut out = Vec::new();
    for (idx, line) in stripped.lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut rest = line.code.as_str();
        while let Some(c) = rest.chars().next() {
            if c.is_whitespace() {
                rest = &rest[c.len_utf8()..];
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let end = rest
                    .find(|ch: char| !ch.is_alphanumeric() && ch != '_')
                    .unwrap_or(rest.len());
                out.push(SpannedTok {
                    line: lineno,
                    tok: Tok::Ident(rest[..end].to_owned()),
                });
                rest = &rest[end..];
            } else {
                out.push(SpannedTok {
                    line: lineno,
                    tok: Tok::Sym(c),
                });
                rest = &rest[c.len_utf8()..];
            }
        }
    }
    out
}

/// One recovered function body.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the matching closing `}` (exclusive body end).
    pub close: usize,
    /// Whether the body sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Recovers every function body from the token stream by brace matching.
///
/// Nested functions are returned as their own bodies (their token ranges
/// sit inside the parent's range; walkers skip nested `fn` regions so
/// nothing is analyzed twice). Trait-method declarations without bodies
/// are ignored. Bodies inside `#[cfg(test)]` regions are marked
/// `in_test` so test-only code escapes production rules, mirroring the
/// per-line scanner's exemption.
pub fn function_bodies(toks: &[SpannedTok]) -> Vec<FnBody> {
    let mut bodies = Vec::new();
    let mut depth = 0usize;
    let mut test_region: Option<usize> = None;
    let mut pending_test = false;
    // (name, fn-line) awaiting its opening brace.
    let mut pending_fn: Option<(String, usize)> = None;
    let mut awaiting_name = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("cfg") && toks.get(i + 1).is_some_and(|n| n.is_sym('(')) {
            if toks.get(i + 2).is_some_and(|n| n.is_ident("test")) {
                pending_test = true;
            }
        } else if t.is_ident("fn") {
            awaiting_name = true;
        } else if awaiting_name {
            if let Some(name) = t.ident() {
                pending_fn = Some((name.to_owned(), t.line));
                awaiting_name = false;
            }
        }
        match &t.tok {
            Tok::Sym('{') => {
                if pending_test && test_region.is_none() {
                    test_region = Some(depth);
                    pending_test = false;
                }
                if let Some((name, line)) = pending_fn.take() {
                    let close = matching_close(toks, i);
                    bodies.push(FnBody {
                        name,
                        line,
                        open: i,
                        close,
                        in_test: test_region.is_some(),
                    });
                }
                depth += 1;
            }
            Tok::Sym('}') => {
                depth = depth.saturating_sub(1);
                if test_region == Some(depth) {
                    test_region = None;
                }
            }
            Tok::Sym(';') => {
                // Trait-method declaration (or `#[cfg(test)] use …;`).
                pending_fn = None;
                if pending_test {
                    pending_test = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bodies
}

/// Token index of the `}` matching the `{` at `open` (or the end of the
/// stream for unbalanced input — truncated files fail soft, not loud).
pub fn matching_close(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Sym('{') => depth += 1,
            Tok::Sym('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Token index just past the `)` matching the `(` at `open` minus one —
/// i.e. the index of the matching `)` itself (or stream end).
pub fn matching_paren(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Sym('(') => depth += 1,
            Tok::Sym(')') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    fn toks(src: &str) -> Vec<SpannedTok> {
        tokenize(&strip(src))
    }

    #[test]
    fn tokens_carry_lines_and_skip_strings() {
        let t = toks("let x = \"a.b()\";\nx.lock()\n");
        assert!(t.iter().any(|t| t.is_ident("lock") && t.line == 2));
        // The string's contents were blanked: no `a`/`b` idents on line 1.
        assert!(!t.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn function_bodies_are_brace_matched() {
        let src = "fn outer() { if x { y(); } }\nfn later() -> u8 { 0 }\n";
        let t = toks(src);
        let bodies = function_bodies(&t);
        assert_eq!(bodies.len(), 2);
        assert_eq!(bodies[0].name, "outer");
        assert_eq!(bodies[0].line, 1);
        assert!(t[bodies[0].open].is_sym('{'));
        assert!(t[bodies[0].close].is_sym('}'));
        assert_eq!(bodies[1].name, "later");
        assert_eq!(bodies[1].line, 2);
    }

    #[test]
    fn nested_fns_and_trait_decls() {
        let src = "trait T { fn decl(&self); }\nfn a() { fn b() {} b(); }\n";
        let bodies = function_bodies(&toks(src));
        let names: Vec<&str> = bodies.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["a", "b"], "decl has no body; nested b recovered");
    }

    #[test]
    fn cfg_test_bodies_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        let bodies = function_bodies(&toks(src));
        assert_eq!(bodies.len(), 2);
        assert!(!bodies[0].in_test);
        assert!(bodies[1].in_test, "body inside cfg(test) region");
    }

    #[test]
    fn unbalanced_input_fails_soft() {
        let t = toks("fn broken() { let x = 1;\n");
        let bodies = function_bodies(&t);
        assert_eq!(bodies.len(), 1);
        assert_eq!(bodies[0].close, t.len());
    }
}
