//! The invariant rules and the per-file analysis that enforces them.
//!
//! Scope tables pin each rule to the crates/files where the workspace
//! convention is load-bearing; see DESIGN.md ("Machine-checked
//! invariants") for the PR that introduced each convention.

use crate::report::Finding;
use crate::scan::{strip, word_occurrences};

/// Rule names with one-line descriptions, as shown by `--list-rules`.
pub const RULES: &[(&str, &str)] = &[
    (
        "determinism",
        "no wall clocks, OS entropy, or hash-order iteration in cloud-sim/cloud-api/collector/timestream",
    ),
    (
        "fail-closed",
        "no unwrap/expect/panic (and no slice indexing in the codec/WAL/recovery trio) on decode and serving paths",
    ),
    (
        "durability",
        "fs writes in the persistence layer flow through atomic_write/truncate_sync, never raw create+write",
    ),
    (
        "metrics-contract",
        "every spotlake_* metric literal resolves against the canonical manifest in obs::names, and vice versa",
    ),
    (
        "unchecked-arith",
        "no narrowing casts or unchecked +/* on lengths and offsets in codec/WAL frame parsing",
    ),
    (
        "allow-syntax",
        "lint:allow directives must name a known rule and carry a non-empty justification",
    ),
    (
        "lock-order",
        "lock acquisition order is acyclic across the workspace (deadlock freedom)",
    ),
    (
        "hold-across-blocking",
        "no lock guard held across fs I/O, socket ops, channel send/recv, join, or sleep",
    ),
    (
        "poison-safe",
        "serving/obs lock acquisitions recover from poisoning via unwrap_or_else(PoisonError::into_inner), never .unwrap()/.expect()",
    ),
    (
        "channel-topology",
        "serving/collector channels are bounded sync_channels and spawned threads have a reachable join",
    ),
    (
        "guard-into-spawn",
        "no lock guard captured into a spawned closure",
    ),
];

/// Whether `name` is a recognized rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == name)
}

const DETERMINISM_CRATES: &[&str] = &["cloud-sim", "cloud-api", "collector", "timestream"];
/// The codec/WAL/recovery trio: decode paths where a panic is data loss.
const PARSER_FILES: &[&str] = &["codec.rs", "wal.rs", "recovery.rs", "shard.rs"];
/// Functions allowed to touch raw filesystem APIs: the designated
/// fsync-then-rename helpers plus `Wal::open` (which owns the log handle).
const DURABILITY_FNS: &[&str] = &["atomic_write", "truncate_sync", "open"];

fn file_name(rel_path: &str) -> &str {
    rel_path.rsplit('/').next().unwrap_or(rel_path)
}

fn in_parser_trio(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "timestream" && PARSER_FILES.contains(&file_name(rel_path))
}

fn in_durability_scope(crate_name: &str, rel_path: &str) -> bool {
    in_parser_trio(crate_name, rel_path)
        || (crate_name == "collector" && file_name(rel_path) == "durability.rs")
}

fn in_fail_closed_scope(crate_name: &str, rel_path: &str) -> bool {
    crate_name == "serving" || in_parser_trio(crate_name, rel_path)
}

/// What one file contributed to the workspace analysis.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations found (allowlisted ones already removed).
    pub findings: Vec<Finding>,
    /// `spotlake_*` metric-name literals in non-test code, with lines —
    /// input to the workspace-level reverse manifest check.
    pub metric_literals: Vec<(usize, String)>,
    /// Lock acquisition-order edges — input to the workspace-level
    /// lock-order cycle check.
    pub lock_edges: Vec<crate::conc::LockEdge>,
}

/// One parsed `lint:allow(<rule>): justification` directive.
struct Allow {
    line: usize,
    target_line: usize,
    rule: String,
    justified: bool,
    known: bool,
}

/// Analyzes one file's source as `crate_name` at `rel_path` (repo-
/// relative, used in diagnostics and scope decisions).
pub fn analyze_source(crate_name: &str, rel_path: &str, source: &str) -> FileAnalysis {
    let stripped = strip(source);
    let mut analysis = FileAnalysis::default();

    // ---- allow directives -------------------------------------------
    let mut allows: Vec<Allow> = Vec::new();
    for (idx, line) in stripped.lines.iter().enumerate() {
        // A directive must be the whole comment (`// lint:allow(…): …`);
        // prose that merely mentions the syntax (doc comments start with
        // `/` or `!` after stripping) is not a directive.
        let trimmed = line.comment.trim_start();
        let Some(rest) = trimmed.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                line: idx + 1,
                target_line: idx + 1,
                rule: String::new(),
                justified: false,
                known: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        let tail = &rest[close + 1..];
        let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());
        // A directive on a comment-only line covers the next code line.
        let target_line = if line.code.trim().is_empty() {
            stripped
                .lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(idx + 1)
        } else {
            idx + 1
        };
        let known = is_rule(&rule);
        allows.push(Allow {
            line: idx + 1,
            target_line,
            rule,
            justified,
            known,
        });
    }
    for a in &allows {
        if !a.known || !a.justified {
            analysis.findings.push(Finding {
                rule: "allow-syntax".to_owned(),
                path: rel_path.to_owned(),
                line: a.line,
                message: if a.known {
                    format!(
                        "lint:allow({}) needs a justification: `// lint:allow({}): <why>`",
                        a.rule, a.rule
                    )
                } else {
                    format!("lint:allow names unknown rule {:?}", a.rule)
                },
            });
        }
    }
    let allowed = |rule: &str, line: usize| {
        allows
            .iter()
            .any(|a| a.known && a.justified && a.rule == rule && a.target_line == line)
    };

    // ---- per-line walk with region tracking -------------------------
    let mut depth: usize = 0;
    let mut test_region: Option<usize> = None;
    let mut pending_test = false;
    let mut fn_stack: Vec<(usize, String)> = Vec::new();
    let mut pending_fn: Option<String> = None;

    let mut findings = Vec::new();
    for (idx, line) in stripped.lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = test_region.is_some();
        let code = line.code.as_str();

        if code.contains("cfg(test)") {
            pending_test = true;
        }

        // ---- rule checks (before brace bookkeeping, so the enclosing
        // fn for this line is the one currently on the stack) ----------
        if !in_test {
            let current_fn = fn_stack.last().map(|(_, n)| n.as_str());
            let mut emit = |rule: &str, message: String| {
                if !allowed(rule, lineno) {
                    findings.push(Finding {
                        rule: rule.to_owned(),
                        path: rel_path.to_owned(),
                        line: lineno,
                        message,
                    });
                }
            };

            if DETERMINISM_CRATES.contains(&crate_name) {
                for pat in ["SystemTime::now", "Instant::now"] {
                    if code.contains(pat) {
                        emit(
                            "determinism",
                            format!("wall clock `{pat}` breaks same-seed replay; use the simulated tick"),
                        );
                    }
                }
                for pat in ["thread_rng", "from_entropy", "rand::random"] {
                    if code.contains(pat) {
                        emit(
                            "determinism",
                            format!(
                                "OS entropy `{pat}` breaks same-seed replay; use the seeded RNG"
                            ),
                        );
                    }
                }
                for pat in ["HashMap", "HashSet"] {
                    if !word_occurrences(code, pat).is_empty() {
                        emit(
                            "determinism",
                            format!(
                                "`{pat}` iteration order is nondeterministic; use the BTree equivalent"
                            ),
                        );
                    }
                }
            }

            if in_fail_closed_scope(crate_name, rel_path) {
                for pat in [
                    ".unwrap()",
                    ".expect(",
                    "panic!(",
                    "todo!(",
                    "unimplemented!(",
                ] {
                    if code.contains(pat) {
                        emit(
                            "fail-closed",
                            format!("`{pat}` can panic on hostile input; return an error instead"),
                        );
                    }
                }
                if in_parser_trio(crate_name, rel_path) {
                    for (pos, _) in code.match_indices('[') {
                        let prev = code[..pos].chars().next_back();
                        if prev.is_some_and(|c| {
                            c.is_alphanumeric() || c == '_' || c == ')' || c == ']' || c == '?'
                        }) {
                            emit(
                                "fail-closed",
                                "slice indexing can panic on short input; use `.get()`".to_owned(),
                            );
                            break;
                        }
                    }
                }
            }

            if in_durability_scope(crate_name, rel_path) {
                let exempt = current_fn.is_some_and(|f| DURABILITY_FNS.contains(&f));
                for pat in [
                    "File::create(",
                    "OpenOptions::new(",
                    "fs::write(",
                    "fs::rename(",
                ] {
                    if code.contains(pat) && !exempt {
                        emit(
                            "durability",
                            format!(
                                "raw `{pat}..)` bypasses fsync-then-rename; use atomic_write/truncate_sync"
                            ),
                        );
                    }
                }
            }

            if in_parser_trio(crate_name, rel_path) {
                for cast in [
                    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
                ] {
                    let ty = &cast[4..];
                    for pos in word_occurrences(code, ty) {
                        let head = &code[..pos];
                        if head.trim_end().ends_with(" as")
                            || head.trim_end() == "as"
                            || head.ends_with("as ")
                        {
                            // ensure the `as` is a word, not part of an ident
                            let as_start = head.trim_end().len().saturating_sub(2);
                            if crate::scan::word_at(code, as_start, "as") {
                                emit(
                                    "unchecked-arith",
                                    format!(
                                        "narrowing `{}` can truncate silently; use `u32::try_from`/checked conversion",
                                        cast.trim()
                                    ),
                                );
                            }
                        }
                    }
                }
                for pat in [
                    "wrapping_add(",
                    "wrapping_sub(",
                    "wrapping_mul(",
                    "unchecked_add(",
                    "unchecked_sub(",
                    "unchecked_mul(",
                ] {
                    if code.contains(pat) {
                        emit(
                            "unchecked-arith",
                            format!("`{pat}..)` hides overflow in frame parsing; use checked arithmetic"),
                        );
                    }
                }
                if let Some(op) = length_arith(code) {
                    emit(
                        "unchecked-arith",
                        format!(
                            "unchecked `{op}` on a length/offset can overflow; use `checked_add`/`saturating_add`"
                        ),
                    );
                }
            }

            // metrics-contract: every spotlake_* literal must resolve.
            for (str_line, value) in &stripped.strings {
                if *str_line != lineno {
                    continue;
                }
                if let Some(name) = metric_candidate(value) {
                    analysis.metric_literals.push((lineno, name.to_owned()));
                    if spotlake_obs::names::lookup(name).is_none() {
                        emit(
                            "metrics-contract",
                            format!(
                                "metric name {name:?} is not in the canonical manifest (obs::names::METRIC_FAMILIES)"
                            ),
                        );
                    }
                }
            }
        }

        // ---- brace / fn / test-region bookkeeping --------------------
        for tok in tokens(code) {
            match tok {
                Token::Ident(id) => {
                    if id == "fn" {
                        pending_fn = Some(String::new());
                    } else if let Some(name) = pending_fn.as_mut() {
                        if name.is_empty() {
                            *name = id.to_owned();
                        }
                    }
                }
                Token::Sym('{') => {
                    if pending_test && test_region.is_none() {
                        test_region = Some(depth);
                        pending_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        if !name.is_empty() {
                            fn_stack.push((depth, name));
                        }
                    }
                    depth += 1;
                }
                Token::Sym('}') => {
                    depth = depth.saturating_sub(1);
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                    while fn_stack.last().is_some_and(|(d, _)| *d >= depth) {
                        fn_stack.pop();
                    }
                }
                Token::Sym(';') => {
                    // `#[cfg(test)] use …;` or a trait-method declaration.
                    if pending_fn.as_ref().is_some_and(|n| !n.is_empty()) {
                        pending_fn = None;
                    }
                    if pending_test && !code.contains("cfg(test)") {
                        pending_test = false;
                    }
                }
                Token::Sym(_) => {}
            }
        }
    }

    // ---- structural concurrency pass --------------------------------
    let conc = crate::conc::analyze_concurrency(crate_name, rel_path, &stripped);
    for f in conc.findings {
        if !allowed(&f.rule, f.line) {
            findings.push(f);
        }
    }
    analysis.lock_edges = conc.edges;

    analysis.findings.extend(findings);
    analysis.findings.sort_by_key(|f| f.line);
    analysis
}

/// `Some(op)` when the line applies a raw `+`/`*` (or compound form) to a
/// length-ish operand: an identifier segment named `len`, `pos`,
/// `offset`, `start`, or `end`, or ending in `_len`.
fn length_arith(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        let op = match b {
            b'+' => "+",
            b'*' => "*",
            _ => continue,
        };
        // `+=`-style compounds hit the same check; `=` follows the sign.
        if op == "+" && bytes.get(i + 1) == Some(&b'+') {
            continue;
        }
        let prev = operand(
            code[..i]
                .trim_end()
                .chars()
                .rev()
                .collect::<String>()
                .as_str(),
        )
        .chars()
        .rev()
        .collect::<String>();
        let mut after = &code[i + 1..];
        if let Some(stripped) = after.strip_prefix('=') {
            after = stripped;
        }
        let next = operand(after.trim_start());
        if length_ish(&prev) || length_ish(&next) {
            return Some(if bytes.get(i + 1) == Some(&b'=') {
                if op == "+" {
                    "+="
                } else {
                    "*="
                }
            } else {
                op
            });
        }
    }
    None
}

/// The maximal operand-ish prefix of `s`: identifier chars plus `.()`.
fn operand(s: &str) -> String {
    s.chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_' || c == '.' || c == '(' || c == ')')
        .collect()
}

fn length_ish(word: &str) -> bool {
    let trimmed = word.trim_end_matches(['(', ')']);
    let seg = trimmed.rsplit('.').next().unwrap_or(trimmed);
    matches!(seg, "len" | "pos" | "offset" | "start" | "end") || seg.ends_with("_len")
}

/// `Some(name)` when a string literal is shaped like a metric family
/// name: `spotlake_` plus a non-empty `[a-z0-9_]` suffix.
fn metric_candidate(value: &str) -> Option<&str> {
    let rest = value.strip_prefix("spotlake_")?;
    if rest.is_empty()
        || !rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    Some(value)
}

enum Token<'a> {
    Ident(&'a str),
    Sym(char),
}

fn tokens(code: &str) -> impl Iterator<Item = Token<'_>> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(c) = rest.chars().next() {
        if c.is_alphanumeric() || c == '_' {
            let end = rest
                .find(|ch: char| !ch.is_alphanumeric() && ch != '_')
                .unwrap_or(rest.len());
            out.push(Token::Ident(&rest[..end]));
            rest = &rest[end..];
        } else {
            out.push(Token::Sym(c));
            rest = &rest[c.len_utf8()..];
        }
    }
    out.into_iter()
}
