//! `spotlake-lint` — workspace invariant checker.
//!
//! Enforces the conventions the test suite cannot see locally:
//! determinism (no wall clocks / hash-order leaks in simulated layers),
//! fail-closed decode paths (no panics on hostile bytes), durable writes
//! (fsync-then-rename only), a closed metrics namespace, and checked
//! arithmetic in frame parsing. Run as `cargo run -p spotlake-lint` or
//! via the `cargo lint` alias; see `--list-rules` for the rule set and
//! DESIGN.md ("Machine-checked invariants") for each rule's rationale.
//!
//! Violations are suppressed per line with
//! `// lint:allow(<rule>): <justification>` — the justification is
//! mandatory and an unknown rule name is itself a violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conc;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::{render_json, Finding};
pub use rules::{analyze_source, FileAnalysis, RULES};

use std::path::{Path, PathBuf};

/// Analyzes every workspace crate under `root` and returns all findings,
/// sorted by path then line.
///
/// Scans `crates/*/src/**/*.rs` (the lint crate included — it must pass
/// its own rules). Tests, benches, fixtures, and vendored code are out
/// of scope: integration tests may use `unwrap` freely, and vendor code
/// is not ours to lint.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut metric_literals: Vec<(String, usize, String)> = Vec::new();
    let mut lock_edges: Vec<conc::LockEdge> = Vec::new();

    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in sorted_rs_files(&src)? {
            let rel = rel_path(root, &file);
            let source = std::fs::read_to_string(&file)?;
            let analysis = analyze_source(&crate_name, &rel, &source);
            findings.extend(analysis.findings);
            for (line, name) in analysis.metric_literals {
                metric_literals.push((rel.clone(), line, name));
            }
            lock_edges.extend(analysis.lock_edges);
        }
    }

    findings.extend(check_manifest_usage(root, &metric_literals));
    findings.extend(conc::lock_order_findings(&lock_edges));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Analyzes a single file like `analyze_workspace` does, including the
/// intra-file slice of the lock-order cycle check (cross-file cycles
/// need the full workspace graph). This is what `--check-file` runs.
pub fn analyze_file(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let analysis = analyze_source(crate_name, rel_path, source);
    let mut findings = analysis.findings;
    findings.extend(conc::lock_order_findings(&analysis.lock_edges));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Reverse direction of the metrics contract: every family in the
/// canonical manifest must be emitted somewhere outside the manifest
/// itself, or it is dead weight that will silently drift. Findings are
/// anchored at the name's own line in `obs/src/names.rs`.
fn check_manifest_usage(root: &Path, literals: &[(String, usize, String)]) -> Vec<Finding> {
    const MANIFEST_PATH: &str = "crates/obs/src/names.rs";
    let manifest_src = std::fs::read_to_string(root.join(MANIFEST_PATH)).unwrap_or_default();
    let mut findings = Vec::new();
    for family in spotlake_obs::names::METRIC_FAMILIES {
        let used = literals
            .iter()
            .any(|(path, _, name)| name == family.name && path != MANIFEST_PATH);
        if used {
            continue;
        }
        let line = manifest_src
            .lines()
            .position(|l| l.contains(&format!("\"{}\"", family.name)))
            .map(|idx| idx + 1)
            .unwrap_or(1);
        findings.push(Finding {
            rule: "metrics-contract".to_owned(),
            path: MANIFEST_PATH.to_owned(),
            line,
            message: format!(
                "manifest family {:?} is never emitted by any crate; remove it or wire it up",
                family.name
            ),
        });
    }
    findings
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn sorted_dirs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn sorted_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}
