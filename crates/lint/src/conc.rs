//! Concurrency-discipline rules over the structural pass in
//! [`crate::parse`]: lock-order cycles, guards held across blocking
//! calls, poison-unsafe acquisitions, channel/spawn topology, and
//! guards captured into spawned closures.
//!
//! The analyzer tracks lock-guard live-ranges per function body:
//! named guards (`let g = lock(x);`) live to the end of their block or
//! an explicit `drop(g)`; temporary guards (`lock(x).field += 1;`)
//! live to the end of their statement; and — modeling Rust's
//! temporary-lifetime rules — a guard acquired in a `match`/`for`/
//! `while`/`if` head lives to the end of the construct's block.
//! Acquisitions through the workspace's poison-recovering `lock(…)`
//! helper and through `.lock()`/`.read()`/`.write()` are both
//! recognized; a lock's identity is the last field/binding identifier
//! of the receiver (`self.inner.read()` → `inner`), which is what the
//! cross-file acquisition graph is keyed by.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{function_bodies, matching_close, matching_paren, tokenize, FnBody, SpannedTok};
use crate::report::Finding;
use crate::scan::Stripped;

/// Crates with real threads: the concurrency rules apply here.
pub const CONC_CRATES: &[&str] = &["serving", "obs", "collector", "timestream"];
/// Crates whose lock acquisitions must recover from poisoning.
const POISON_CRATES: &[&str] = &["serving", "obs"];
/// Crates whose channels must be bounded and spawns joinable.
const CHANNEL_CRATES: &[&str] = &["serving", "collector"];

/// Guard-acquiring methods (empty-parens calls only, so `io::Write::
/// write(buf)` and `BufRead::read(buf)` never match).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Methods that block the calling thread (channel ops, joins, socket
/// and file I/O). `join`/`recv` additionally require empty parens so
/// `Path::join(p)` and `[..].join(sep)` never match.
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "recv",
    "recv_timeout",
    "send",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "sync_all",
    "sync_data",
    "wait",
    "accept",
    "connect",
];

/// Free functions that perform durable file I/O (the workspace's
/// fsync-then-rename helpers).
const BLOCKING_FNS: &[&str] = &["atomic_write", "truncate_sync"];

/// One "guard on `from` was live when `to` was acquired" observation;
/// the inputs to the workspace-level lock-order graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock being acquired.
    pub to: String,
    /// Repo-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
    /// Enclosing function (plus ` -> callee()` for summary edges).
    pub func: String,
}

/// What the concurrency pass found in one file.
#[derive(Debug, Default)]
pub struct ConcAnalysis {
    /// Violations (not yet allow-filtered; the caller does that).
    pub findings: Vec<Finding>,
    /// Acquisition-order edges for the workspace lock-order graph.
    pub edges: Vec<LockEdge>,
}

/// Runs every concurrency rule over one file.
pub fn analyze_concurrency(crate_name: &str, rel_path: &str, stripped: &Stripped) -> ConcAnalysis {
    let mut out = ConcAnalysis::default();
    if !CONC_CRATES.contains(&crate_name) {
        return out;
    }
    let toks = tokenize(stripped);
    let bodies = function_bodies(&toks);
    let summaries = fn_summaries(&toks, &bodies);
    for body in &bodies {
        if body.in_test {
            continue;
        }
        walk_body(crate_name, rel_path, &toks, body, &summaries, &mut out);
    }
    out
}

/// A live lock guard inside one body walk.
struct Guard {
    /// Binding name for `let g = …` guards; `None` for temporaries.
    name: Option<String>,
    /// Lock identity (receiver's last field/binding identifier).
    lock: String,
    /// Acquisition line (for diagnostics).
    line: usize,
    /// Token index where the acquisition chain starts — used to match
    /// "blocking through the guard itself" (`lock(rx).recv()`).
    acq_at: usize,
    /// Brace depth at binding; named guards die when it unwinds.
    depth: usize,
    /// Token index at which a temporary dies.
    until: Option<usize>,
}

/// One recognized lock acquisition.
struct Acq {
    /// Token index where the full receiver/call chain starts.
    chain_start: usize,
    /// Token index of the `)` closing the acquisition call.
    close: usize,
    /// Lock identity.
    lock: String,
}

#[allow(clippy::too_many_lines)]
fn walk_body(
    crate_name: &str,
    rel_path: &str,
    toks: &[SpannedTok],
    body: &FnBody,
    summaries: &BTreeMap<String, Vec<String>>,
    out: &mut ConcAnalysis,
) {
    let poison_scope = POISON_CRATES.contains(&crate_name);
    let channel_scope = CHANNEL_CRATES.contains(&crate_name);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = body.open + 1;
    let mut i = body.open + 1;
    while i < body.close {
        guards.retain(|g| g.until != Some(i));
        let t = &toks[i];

        // Nested fn items are separate bodies; skip them here.
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.ident().is_some()) {
            let mut j = i + 1;
            while j < body.close && !toks[j].is_sym('{') && !toks[j].is_sym(';') {
                j += 1;
            }
            if j < body.close && toks[j].is_sym('{') {
                i = matching_close(toks, j) + 1;
                stmt_start = i;
                continue;
            }
        }

        if t.is_sym('{') {
            depth += 1;
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_sym('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.until.is_some() || g.depth <= depth);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_sym(';') {
            stmt_start = i + 1;
            i += 1;
            continue;
        }

        // `drop(name)` releases the most recent guard bound to `name`.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_sym('('))
            && toks.get(i + 3).is_some_and(|n| n.is_sym(')'))
        {
            if let Some(name) = toks.get(i + 2).and_then(|n| n.ident()) {
                if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(name)) {
                    guards.remove(pos);
                }
            }
        }

        // ---- acquisitions -------------------------------------------
        if let Some(acq) = acquisition_at(toks, i) {
            let line = toks[i].line;
            // Walk the adapter chain: `unwrap_or_else(…)` is the poison-
            // recovery idiom; `unwrap`/`expect` right after an acquisition
            // is the poison-unsafe anti-pattern.
            let mut cend = acq.close;
            loop {
                let dot = cend + 1;
                if !toks.get(dot).is_some_and(|n| n.is_sym('.')) {
                    break;
                }
                let Some(m) = toks.get(dot + 1).and_then(|n| n.ident()) else {
                    break;
                };
                if !toks.get(dot + 2).is_some_and(|n| n.is_sym('(')) {
                    break;
                }
                match m {
                    "unwrap" | "expect" => {
                        if poison_scope {
                            out.findings.push(Finding {
                                rule: "poison-safe".to_owned(),
                                path: rel_path.to_owned(),
                                line: toks[dot + 1].line,
                                message: format!(
                                    "`.{m}(…)` on the `{}` lock panics forever once poisoned; recover with `.unwrap_or_else(PoisonError::into_inner)` (see the `lock` helper)",
                                    acq.lock
                                ),
                            });
                        }
                        cend = matching_paren(toks, dot + 2);
                    }
                    "unwrap_or_else" | "unwrap_or" => {
                        cend = matching_paren(toks, dot + 2);
                    }
                    _ => break,
                }
            }

            // Live-range: named binding, end-of-statement temporary, or
            // construct-head temporary (match/for/while/if scrutinee).
            let name = binding_name(toks, stmt_start, acq.chain_start);
            let after = cend + 1;
            let until = if name.is_some() {
                None
            } else if toks.get(after).is_some_and(|n| n.is_sym(';')) {
                Some(after)
            } else if has_construct_kw(toks, stmt_start, acq.chain_start) {
                let mut j = after;
                while j < body.close && !toks[j].is_sym('{') {
                    if toks[j].is_sym('(') {
                        j = matching_paren(toks, j);
                    }
                    j += 1;
                }
                Some(if j < body.close {
                    matching_close(toks, j)
                } else {
                    body.close
                })
            } else {
                Some(statement_end(toks, after, body.close))
            };

            for g in &guards {
                if g.lock != acq.lock {
                    out.edges.push(LockEdge {
                        from: g.lock.clone(),
                        to: acq.lock.clone(),
                        path: rel_path.to_owned(),
                        line,
                        func: body.name.clone(),
                    });
                }
            }
            guards.push(Guard {
                name,
                lock: acq.lock,
                line,
                acq_at: acq.chain_start,
                depth,
                until,
            });
            i = cend + 1;
            continue;
        }

        // ---- blocking calls under a live guard ----------------------
        if !guards.is_empty() {
            if let Some((what, root)) = blocking_at(toks, i) {
                for g in &guards {
                    let through_guard = root.is_some_and(|r| {
                        r == g.acq_at
                            || (g.name.is_some()
                                && toks.get(r).and_then(|n| n.ident()) == g.name.as_deref())
                    });
                    if through_guard {
                        continue;
                    }
                    out.findings.push(Finding {
                        rule: "hold-across-blocking".to_owned(),
                        path: rel_path.to_owned(),
                        line: toks[i].line,
                        message: format!(
                            "guard on `{}` (acquired line {}) is held across blocking `{what}`; drop it or narrow its scope first",
                            g.lock, g.line
                        ),
                    });
                }
            }

            // One-level call summaries: calling a sibling function that
            // itself locks, while holding a guard, orders those locks.
            if let Some(callee) = t.ident() {
                let bare_call = toks.get(i + 1).is_some_and(|n| n.is_sym('('))
                    && !(i > 0 && toks[i - 1].is_sym('.'));
                if bare_call {
                    if let Some(callee_locks) = summaries.get(callee) {
                        for g in &guards {
                            for l in callee_locks {
                                if *l != g.lock {
                                    out.edges.push(LockEdge {
                                        from: g.lock.clone(),
                                        to: l.clone(),
                                        path: rel_path.to_owned(),
                                        line: toks[i].line,
                                        func: format!("{} -> {callee}()", body.name),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- spawn sites --------------------------------------------
        if t.is_ident("spawn") && toks.get(i + 1).is_some_and(|n| n.is_sym('(')) {
            let close = matching_paren(toks, i + 1);
            for g in &guards {
                if let Some(name) = &g.name {
                    if toks[i + 2..close.min(toks.len())]
                        .iter()
                        .any(|n| n.is_ident(name))
                    {
                        out.findings.push(Finding {
                            rule: "guard-into-spawn".to_owned(),
                            path: rel_path.to_owned(),
                            line: toks[i].line,
                            message: format!(
                                "guard `{name}` on `{}` is captured by this spawned closure; a lock guard must never cross a thread spawn",
                                g.lock
                            ),
                        });
                    }
                }
            }
            if channel_scope
                && !scoped_spawn(toks, i)
                && spawn_is_detached(toks, i, close, stmt_start, body.close)
            {
                out.findings.push(Finding {
                    rule: "channel-topology".to_owned(),
                    path: rel_path.to_owned(),
                    line: toks[i].line,
                    message: "spawned thread is detached: bind the JoinHandle and join it on shutdown, or use thread::scope".to_owned(),
                });
            }
        }

        // ---- unbounded channels -------------------------------------
        if channel_scope {
            if t.is_ident("channel")
                && i >= 3
                && toks[i - 1].is_sym(':')
                && toks[i - 2].is_sym(':')
                && toks[i - 3].is_ident("mpsc")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_sym('(') || n.is_sym(':'))
            {
                out.findings.push(Finding {
                    rule: "channel-topology".to_owned(),
                    path: rel_path.to_owned(),
                    line: toks[i].line,
                    message: "unbounded `mpsc::channel`: serving/collector queues must be bounded (`sync_channel`) so backpressure reaches the producer".to_owned(),
                });
            }
            if t.is_ident("unbounded") && toks.get(i + 1).is_some_and(|n| n.is_sym('(')) {
                out.findings.push(Finding {
                    rule: "channel-topology".to_owned(),
                    path: rel_path.to_owned(),
                    line: toks[i].line,
                    message: "unbounded channel: serving/collector queues must be bounded so backpressure reaches the producer".to_owned(),
                });
            }
        }

        i += 1;
    }
}

/// `let [mut] <name> =` immediately before the acquisition chain.
fn binding_name(toks: &[SpannedTok], stmt_start: usize, chain_start: usize) -> Option<String> {
    let head: Vec<&SpannedTok> = toks.get(stmt_start..chain_start)?.iter().collect();
    let rest = match head.as_slice() {
        [l, rest @ ..] if l.is_ident("let") => rest,
        _ => return None,
    };
    let rest = match rest {
        [m, rest @ ..] if m.is_ident("mut") => rest,
        _ => rest,
    };
    match rest {
        [name, eq] if eq.is_sym('=') => name.ident().map(str::to_owned),
        _ => None,
    }
}

/// Whether the statement head contains a construct keyword whose
/// scrutinee temporaries outlive the head (`match`/`for`/`while`/`if`).
fn has_construct_kw(toks: &[SpannedTok], stmt_start: usize, chain_start: usize) -> bool {
    toks[stmt_start..chain_start.min(toks.len())]
        .iter()
        .any(|t| {
            ["match", "for", "while", "if"]
                .iter()
                .any(|k| t.is_ident(k))
        })
}

/// First `;` (or unmatched `}`) at brace depth 0 from `from`.
fn statement_end(toks: &[SpannedTok], from: usize, limit: usize) -> usize {
    let mut d = 0i32;
    let mut j = from;
    while j < limit {
        if toks[j].is_sym('{') {
            d += 1;
        } else if toks[j].is_sym('}') {
            if d == 0 {
                break;
            }
            d -= 1;
        } else if toks[j].is_sym(';') && d == 0 {
            break;
        }
        j += 1;
    }
    j
}

/// Recognizes a lock acquisition starting at token `i`: either the
/// workspace `lock(expr)` helper call, or an empty-parens
/// `.lock()`/`.read()`/`.write()` method call.
fn acquisition_at(toks: &[SpannedTok], i: usize) -> Option<Acq> {
    let t = &toks[i];
    // Helper-call form: bare `lock(…)`, not a method, path tail, or defn.
    if t.is_ident("lock") && toks.get(i + 1).is_some_and(|n| n.is_sym('(')) {
        let prev_ok = i == 0
            || !(toks[i - 1].is_sym('.') || toks[i - 1].is_sym(':') || toks[i - 1].is_ident("fn"));
        if prev_ok {
            let close = matching_paren(toks, i + 1);
            let lock = last_field_ident(toks, i + 2, close).unwrap_or_else(|| "lock".to_owned());
            return Some(Acq {
                chain_start: i,
                close,
                lock,
            });
        }
    }
    // Method form: `.lock()` / `.read()` / `.write()` with empty parens.
    if t.is_sym('.')
        && toks
            .get(i + 1)
            .and_then(|n| n.ident())
            .is_some_and(|m| LOCK_METHODS.contains(&m))
        && toks.get(i + 2).is_some_and(|n| n.is_sym('('))
        && toks.get(i + 3).is_some_and(|n| n.is_sym(')'))
    {
        let chain_start = receiver_start(toks, i);
        let lock = last_field_ident(toks, chain_start, i)
            .unwrap_or_else(|| toks[i + 1].ident().unwrap_or("lock").to_owned());
        return Some(Acq {
            chain_start,
            close: i + 3,
            lock,
        });
    }
    None
}

/// Recognizes a blocking call at token `i`; returns its display name
/// and, for method calls, the receiver-chain start (for the
/// "blocking through the guard itself" exemption).
fn blocking_at(toks: &[SpannedTok], i: usize) -> Option<(String, Option<usize>)> {
    let t = &toks[i];
    if t.is_sym('.') {
        let m = toks.get(i + 1).and_then(|n| n.ident())?;
        if !BLOCKING_METHODS.contains(&m) || !toks.get(i + 2).is_some_and(|n| n.is_sym('(')) {
            return None;
        }
        if (m == "join" || m == "recv") && !toks.get(i + 3).is_some_and(|n| n.is_sym(')')) {
            return None;
        }
        return Some((format!(".{m}()"), Some(receiver_start(toks, i))));
    }
    if let Some(id) = t.ident() {
        let path_prefix = |name: &str| {
            i >= 3
                && toks[i - 1].is_sym(':')
                && toks[i - 2].is_sym(':')
                && toks[i - 3].is_ident(name)
        };
        let called = toks.get(i + 1).is_some_and(|n| n.is_sym('('));
        if id == "sleep" && path_prefix("thread") && called {
            return Some(("thread::sleep".to_owned(), None));
        }
        if path_prefix("fs") && called {
            return Some((format!("fs::{id}"), None));
        }
        if (id == "open" || id == "create") && path_prefix("File") && called {
            return Some((format!("File::{id}"), None));
        }
        if BLOCKING_FNS.contains(&id)
            && called
            && !(i > 0 && (toks[i - 1].is_sym('.') || toks[i - 1].is_ident("fn")))
        {
            return Some((format!("{id}(…)"), None));
        }
    }
    None
}

/// Walks a method chain backward from the `.` at `dot` to the chain's
/// first token: `self.slot.current` ← `.read()`, or the `lock` callee
/// of `lock(rx)` ← `.recv()`. Chain grammar: element (`.`|`::`
/// element)*, where an element is an identifier optionally followed by
/// a balanced call.
fn receiver_start(toks: &[SpannedTok], dot: usize) -> usize {
    let mut j = dot;
    loop {
        if j == 0 {
            return 0;
        }
        let p = j - 1;
        let elem_start = if toks[p].is_sym(')') || toks[p].is_sym(']') {
            let open = backward_match(toks, p);
            if open >= p {
                return j;
            }
            if open > 0 && toks[open - 1].ident().is_some() {
                open - 1
            } else {
                open
            }
        } else if toks[p].ident().is_some() {
            p
        } else {
            return j;
        };
        if elem_start == 0 {
            return 0;
        }
        let q = elem_start - 1;
        if toks[q].is_sym('.') {
            j = q;
        } else if toks[q].is_sym(':') && q > 0 && toks[q - 1].is_sym(':') {
            j = q - 1;
        } else {
            return elem_start;
        }
    }
}

/// Index of the `(`/`[` matching the closer at `close`, scanning
/// backward; returns `close` itself when unbalanced (fail-soft).
fn backward_match(toks: &[SpannedTok], close: usize) -> usize {
    let (open_c, close_c) = if toks[close].is_sym(']') {
        ('[', ']')
    } else {
        ('(', ')')
    };
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if toks[j].is_sym(close_c) {
            depth += 1;
        } else if toks[j].is_sym(open_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return close;
        }
        j -= 1;
    }
}

/// Last meaningful identifier in `[start, end)` — the lock's identity.
/// Skips `self`/`mut` and the contents of nested calls.
fn last_field_ident(toks: &[SpannedTok], start: usize, end: usize) -> Option<String> {
    let mut last = None;
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(id) = toks[i].ident() {
            if id != "self" && id != "mut" {
                last = Some(id.to_owned());
            }
            // A call's arguments don't name the lock: `lock` in
            // `lock(&self.inner)` is handled by the caller's range.
            if toks.get(i + 1).is_some_and(|n| n.is_sym('(')) && i + 1 < end {
                i = matching_paren(toks, i + 1);
            }
        }
        i += 1;
    }
    last
}

/// Whether the spawn at `i` is a `scope.spawn(…)` — joined by
/// construction when the scope closes.
fn scoped_spawn(toks: &[SpannedTok], i: usize) -> bool {
    if i == 0 || !toks[i - 1].is_sym('.') {
        return false;
    }
    let root = receiver_start(toks, i - 1);
    toks.get(root)
        .is_some_and(|t| t.is_ident("scope") || t.is_ident("s"))
}

/// Whether the spawn expression's JoinHandle is discarded: statement
/// position (`thread::spawn(…);`) or bound to `let _`.
fn spawn_is_detached(
    toks: &[SpannedTok],
    i: usize,
    close: usize,
    stmt_start: usize,
    limit: usize,
) -> bool {
    // Skip `?` and `.unwrap()/.expect(…)` after the call.
    let mut after = close + 1;
    loop {
        if toks.get(after).is_some_and(|n| n.is_sym('?')) {
            after += 1;
            continue;
        }
        if toks.get(after).is_some_and(|n| n.is_sym('.'))
            && toks
                .get(after + 1)
                .and_then(|n| n.ident())
                .is_some_and(|m| m == "unwrap" || m == "expect")
            && toks.get(after + 2).is_some_and(|n| n.is_sym('('))
        {
            after = matching_paren(toks, after + 2) + 1;
            continue;
        }
        break;
    }
    if !(toks.get(after).is_some_and(|n| n.is_sym(';')) || after >= limit) {
        return false; // expression position: the handle flows somewhere
    }
    let chain_start = receiver_start(toks, i);
    let head = &toks[stmt_start..chain_start.min(toks.len()).max(stmt_start)];
    let let_discard =
        head.len() >= 3 && head[0].is_ident("let") && head[1].is_ident("_") && head[2].is_sym('=');
    if let_discard {
        return true;
    }
    // `=` means bound; `(`/`,`/`return` mean the handle is passed on.
    !head
        .iter()
        .any(|t| t.is_sym('=') || t.is_sym('(') || t.is_sym(',') || t.is_ident("return"))
}

/// Per-function direct-acquisition summaries for one file. Functions
/// defined more than once (ambiguous bare name) and the `lock` helper
/// itself are excluded.
fn fn_summaries(toks: &[SpannedTok], bodies: &[FnBody]) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Option<Vec<String>>> = BTreeMap::new();
    for body in bodies {
        if body.in_test || body.name == "lock" {
            continue;
        }
        let locks = direct_acquisitions(toks, body);
        map.entry(body.name.clone())
            .and_modify(|e| *e = None)
            .or_insert(Some(locks));
    }
    map.into_iter()
        .filter_map(|(k, v)| v.and_then(|l| if l.is_empty() { None } else { Some((k, l)) }))
        .collect()
}

/// The distinct locks a body acquires directly, in first-seen order.
fn direct_acquisitions(toks: &[SpannedTok], body: &FnBody) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = body.open + 1;
    while i < body.close {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.ident().is_some()) {
            let mut j = i + 1;
            while j < body.close && !toks[j].is_sym('{') && !toks[j].is_sym(';') {
                j += 1;
            }
            if j < body.close && toks[j].is_sym('{') {
                i = matching_close(toks, j) + 1;
                continue;
            }
        }
        if let Some(acq) = acquisition_at(toks, i) {
            if !out.contains(&acq.lock) {
                out.push(acq.lock.clone());
            }
            i = acq.close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Workspace-level lock-order analysis: finds strongly-connected
/// components in the acquisition graph and reports each cycle once,
/// with witness sites for both directions.
pub fn lock_order_findings(edges: &[LockEdge]) -> Vec<Finding> {
    // Deterministic witness per (from, to): smallest (path, line).
    let mut witness: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    for e in edges {
        let key = (e.from.as_str(), e.to.as_str());
        let better = witness
            .get(&key)
            .is_none_or(|w| (e.path.as_str(), e.line) < (w.path.as_str(), w.line));
        if better {
            witness.insert(key, e);
        }
    }
    let nodes: Vec<&str> = witness
        .keys()
        .flat_map(|(a, b)| [*a, *b])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let idx = |n: &str| nodes.iter().position(|x| *x == n).unwrap_or(0);
    let n = nodes.len();
    let mut reach = vec![vec![false; n]; n];
    for (a, b) in witness.keys() {
        reach[idx(a)][idx(b)] = true;
    }
    for k in 0..n {
        for a in 0..n {
            for b in 0..n {
                reach[a][b] = reach[a][b] || (reach[a][k] && reach[k][b]);
            }
        }
    }

    // Components: mutual reachability; representative = smallest index.
    let mut seen_rep: BTreeSet<usize> = BTreeSet::new();
    let mut findings = Vec::new();
    for (a, row) in reach.iter().enumerate() {
        let comp: Vec<usize> = (0..n)
            .filter(|&b| (a == b) || (row[b] && reach[b][a]))
            .collect();
        if comp.len() < 2 || seen_rep.contains(&comp[0]) || comp[0] != a {
            continue;
        }
        seen_rep.insert(a);
        // Forward witness: smallest in-component edge.
        let Some((&(u, v), fwd)) = witness
            .iter()
            .find(|((f, t), _)| comp.contains(&idx(f)) && comp.contains(&idx(t)) && *f != *t)
        else {
            continue;
        };
        // Back witness: shortest path v → u inside the component.
        let back = shortest_path(&witness, &nodes, &comp, v, u);
        let back_desc = back
            .iter()
            .map(|e| {
                format!(
                    "`{}` then `{}` in fn {} ({}:{})",
                    e.from, e.to, e.func, e.path, e.line
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        findings.push(Finding {
            rule: "lock-order".to_owned(),
            path: fwd.path.clone(),
            line: fwd.line,
            message: format!(
                "lock acquisition cycle between `{u}` and `{v}`: `{u}` then `{v}` in fn {} ({}:{}), but {back_desc}; pick one global acquisition order",
                fwd.func, fwd.path, fwd.line
            ),
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// BFS shortest edge-path `from` → `to` within a component.
fn shortest_path<'a>(
    witness: &BTreeMap<(&str, &str), &'a LockEdge>,
    nodes: &[&str],
    comp: &[usize],
    from: &str,
    to: &str,
) -> Vec<&'a LockEdge> {
    let in_comp = |n: &str| {
        nodes
            .iter()
            .position(|x| *x == n)
            .is_some_and(|i| comp.contains(&i))
    };
    let mut prev: BTreeMap<&str, &LockEdge> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut visited: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            break;
        }
        for ((f, t), e) in witness {
            if *f == cur && in_comp(t) && visited.insert(t) {
                prev.insert(t, e);
                queue.push_back(t);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let Some(e) = prev.get(cur) else {
            return path;
        };
        path.push(*e);
        cur = e.from.as_str();
    }
    path.reverse();
    path
}
