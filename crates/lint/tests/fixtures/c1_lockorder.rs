// Fixture: two functions acquire the same pair of locks in opposite
// orders — a potential deadlock the lock-order rule must report.
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = lock(a);
    let gb = lock(b);
    *ga + *gb
}

pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = lock(b);
    let ga = lock(a);
    *ga + *gb
}
