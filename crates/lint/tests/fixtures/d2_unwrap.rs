pub fn parse(input: &str) -> u32 {
    input.parse().unwrap()
}
