pub const BOGUS_FAMILY: &str = "spotlake_bogus_metric_total";
