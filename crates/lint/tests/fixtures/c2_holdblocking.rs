// Fixture: a lock guard stays live across file I/O — every other
// thread contending on the lock now waits on the disk.
use std::sync::{Mutex, PoisonError};

pub fn flush_under_lock(m: &Mutex<Vec<u8>>) {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
    std::fs::write("/tmp/out", &g[..]).ok();
}
