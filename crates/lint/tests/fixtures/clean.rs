pub fn read_u16(bytes: &[u8]) -> Option<u16> {
    let lo = bytes.first().copied()?;
    let hi = bytes.get(1).copied()?;
    Some((u16::from(hi) << 8) | u16::from(lo))
}
