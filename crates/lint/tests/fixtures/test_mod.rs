pub fn double(n: u32) -> u32 {
    n.saturating_mul(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2).checked_add(0).unwrap(), 4);
    }
}
