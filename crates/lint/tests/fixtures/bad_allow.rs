// lint:allow(determinism)
pub fn unjustified() {}

// lint:allow(nonsense): the rule name does not exist
pub fn unknown_rule() {}
