pub fn collect(_names: &[&str]) -> std::collections::HashMap<u32, u32> {
    Default::default()
}
