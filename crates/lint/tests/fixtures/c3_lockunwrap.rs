// Fixture: `.lock().unwrap()` turns one panic into a permanent outage —
// every later acquisition of the poisoned lock panics too.
use std::sync::Mutex;

pub fn bump(m: &Mutex<u64>) {
    let mut g = m.lock().unwrap();
    *g += 1;
}
