pub fn now_ms() -> u128 {
    let at = std::time::SystemTime::now();
    at.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
