// lint:allow(determinism): fixture exercises the next-line directive form
pub fn boot_instant() -> std::time::Instant {
    probe() // lint:allow(determinism): fixture exercises the same-line form
}

fn probe() -> std::time::Instant {
    std::time::Instant::now() // lint:allow(determinism): fixture needs a real wall-clock read
}
