// Fixture: a lock guard captured into a spawned closure — the lock is
// now held by a thread the acquirer no longer controls.
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn leak(m: &'static Mutex<u64>) {
    let g = lock(m);
    let h = std::thread::spawn(move || drop(g));
    h.join().ok();
}
