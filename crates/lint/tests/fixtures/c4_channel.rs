// Fixture: an unbounded channel (no backpressure) and a detached
// spawn (no reachable join) — both channel-topology violations.
pub fn fanout() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::spawn(move || drop(tx));
    drop(rx);
}
