use std::fs;

pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}
