pub fn narrow(n: usize) -> u32 {
    n as u32
}
