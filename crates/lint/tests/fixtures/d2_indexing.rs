pub fn first_byte(bytes: &[u8]) -> u8 {
    bytes[0]
}
