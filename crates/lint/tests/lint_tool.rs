//! End-to-end tests for the invariant checker: each fixture violates
//! exactly one rule (or none), and the binary's exit codes and output
//! formats are part of the CI contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use spotlake_lint::{analyze_source, Finding};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    (path, source)
}

fn findings(name: &str, as_crate: &str, as_path: &str) -> Vec<Finding> {
    let (_, source) = fixture(name);
    analyze_source(as_crate, as_path, &source).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn d1_wallclock_is_flagged_in_sim_crates_only() {
    let hits = findings("d1_wallclock.rs", "cloud-sim", "crates/cloud-sim/src/x.rs");
    assert_eq!(rules_of(&hits), ["determinism"]);
    assert_eq!(hits[0].line, 2);
    assert!(hits[0].message.contains("SystemTime::now"));
    // The same source in an out-of-scope crate is fine.
    assert!(findings("d1_wallclock.rs", "analysis", "crates/analysis/src/x.rs").is_empty());
}

#[test]
fn d1_hashmap_is_flagged() {
    let hits = findings("d1_hashmap.rs", "collector", "crates/collector/src/x.rs");
    assert_eq!(rules_of(&hits), ["determinism"]);
    assert!(hits[0].message.contains("HashMap"));
}

#[test]
fn d2_unwrap_is_flagged_in_serving() {
    let hits = findings("d2_unwrap.rs", "serving", "crates/serving/src/x.rs");
    assert_eq!(rules_of(&hits), ["fail-closed"]);
    assert_eq!(hits[0].line, 2);
}

#[test]
fn d2_server_modules_are_in_fail_closed_scope() {
    // The fail-closed rule covers the whole serving crate, so the TCP
    // server under serving/src/server/ is inside the scope by
    // construction — this pins that down against future scope edits.
    for path in [
        "crates/serving/src/server/engine.rs",
        "crates/serving/src/server/wire.rs",
        "crates/serving/src/server/loadgen.rs",
    ] {
        let hits = findings("d2_unwrap.rs", "serving", path);
        assert_eq!(rules_of(&hits), ["fail-closed"], "{path}");
    }
    // Deadlines and latency measurement need a monotonic clock, so
    // serving deliberately stays outside the determinism scope.
    assert!(findings(
        "d1_wallclock.rs",
        "serving",
        "crates/serving/src/server/engine.rs"
    )
    .is_empty());
}

#[test]
fn d2_indexing_is_flagged_only_in_the_parser_trio() {
    let hits = findings(
        "d2_indexing.rs",
        "timestream",
        "crates/timestream/src/codec.rs",
    );
    assert_eq!(rules_of(&hits), ["fail-closed"]);
    assert!(hits[0].message.contains("indexing"));
    // Indexing is allowed in serving (only panicking macros are not).
    assert!(findings("d2_indexing.rs", "serving", "crates/serving/src/x.rs").is_empty());
}

#[test]
fn d3_raw_write_is_flagged_outside_the_helpers() {
    let hits = findings(
        "d3_rawwrite.rs",
        "timestream",
        "crates/timestream/src/wal.rs",
    );
    assert_eq!(rules_of(&hits), ["durability"]);
    assert!(hits[0].message.contains("atomic_write"));
}

#[test]
fn d4_unknown_metric_is_flagged_everywhere() {
    let hits = findings("d4_metric.rs", "analysis", "crates/analysis/src/x.rs");
    assert_eq!(rules_of(&hits), ["metrics-contract"]);
    assert!(hits[0].message.contains("spotlake_bogus_metric_total"));
}

#[test]
fn d5_narrowing_cast_is_flagged_in_the_parser_trio() {
    let hits = findings("d5_cast.rs", "timestream", "crates/timestream/src/codec.rs");
    assert_eq!(rules_of(&hits), ["unchecked-arith"]);
    assert!(hits[0].message.contains("as u32"));
    assert!(findings("d5_cast.rs", "timestream", "crates/timestream/src/store.rs").is_empty());
}

#[test]
fn clean_fixture_has_no_findings() {
    assert!(findings("clean.rs", "timestream", "crates/timestream/src/codec.rs").is_empty());
}

#[test]
fn allow_directives_suppress_with_justification() {
    assert!(findings("allowed.rs", "cloud-sim", "crates/cloud-sim/src/x.rs").is_empty());
}

#[test]
fn malformed_allow_directives_are_themselves_findings() {
    let hits = findings("bad_allow.rs", "cloud-sim", "crates/cloud-sim/src/x.rs");
    assert_eq!(rules_of(&hits), ["allow-syntax", "allow-syntax"]);
    assert!(hits[0].message.contains("justification"));
    assert!(hits[1].message.contains("nonsense"));
}

#[test]
fn cfg_test_regions_are_exempt() {
    assert!(findings("test_mod.rs", "serving", "crates/serving/src/x.rs").is_empty());
}

// ---- binary contract ---------------------------------------------------

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spotlake-lint"))
}

#[test]
fn binary_exits_nonzero_with_diagnostics_on_violation() {
    let (path, _) = fixture("d1_wallclock.rs");
    let out = lint_bin()
        .args(["--check-file"])
        .arg(&path)
        .args([
            "--as-crate",
            "cloud-sim",
            "--as-path",
            "crates/cloud-sim/src/x.rs",
        ])
        .args(["--json", "-"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/cloud-sim/src/x.rs:2: [determinism]"),
        "{stdout}"
    );
    assert!(stdout.contains("\"version\":1"), "{stdout}");
    assert!(stdout.contains("\"total\":1"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_file() {
    let (path, _) = fixture("clean.rs");
    let out = lint_bin()
        .args(["--check-file"])
        .arg(&path)
        .args([
            "--as-crate",
            "timestream",
            "--as-path",
            "crates/timestream/src/codec.rs",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn binary_exits_two_on_usage_error() {
    let out = lint_bin()
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_lists_rules() {
    let out = lint_bin()
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "determinism",
        "fail-closed",
        "durability",
        "metrics-contract",
        "unchecked-arith",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in {stdout}");
    }
}

#[test]
fn workspace_self_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = lint_bin()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
}
