//! End-to-end tests for the invariant checker: each fixture violates
//! exactly one rule (or none), and the binary's exit codes and output
//! formats are part of the CI contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use spotlake_lint::{analyze_file, analyze_source, Finding};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    (path, source)
}

fn findings(name: &str, as_crate: &str, as_path: &str) -> Vec<Finding> {
    let (_, source) = fixture(name);
    analyze_source(as_crate, as_path, &source).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn d1_wallclock_is_flagged_in_sim_crates_only() {
    let hits = findings("d1_wallclock.rs", "cloud-sim", "crates/cloud-sim/src/x.rs");
    assert_eq!(rules_of(&hits), ["determinism"]);
    assert_eq!(hits[0].line, 2);
    assert!(hits[0].message.contains("SystemTime::now"));
    // The same source in an out-of-scope crate is fine.
    assert!(findings("d1_wallclock.rs", "analysis", "crates/analysis/src/x.rs").is_empty());
}

#[test]
fn d1_hashmap_is_flagged() {
    let hits = findings("d1_hashmap.rs", "collector", "crates/collector/src/x.rs");
    assert_eq!(rules_of(&hits), ["determinism"]);
    assert!(hits[0].message.contains("HashMap"));
}

#[test]
fn d2_unwrap_is_flagged_in_serving() {
    let hits = findings("d2_unwrap.rs", "serving", "crates/serving/src/x.rs");
    assert_eq!(rules_of(&hits), ["fail-closed"]);
    assert_eq!(hits[0].line, 2);
}

#[test]
fn d2_server_modules_are_in_fail_closed_scope() {
    // The fail-closed rule covers the whole serving crate, so the TCP
    // server under serving/src/server/ is inside the scope by
    // construction — this pins that down against future scope edits.
    for path in [
        "crates/serving/src/server/engine.rs",
        "crates/serving/src/server/wire.rs",
        "crates/serving/src/server/loadgen.rs",
    ] {
        let hits = findings("d2_unwrap.rs", "serving", path);
        assert_eq!(rules_of(&hits), ["fail-closed"], "{path}");
    }
    // Deadlines and latency measurement need a monotonic clock, so
    // serving deliberately stays outside the determinism scope.
    assert!(findings(
        "d1_wallclock.rs",
        "serving",
        "crates/serving/src/server/engine.rs"
    )
    .is_empty());
}

#[test]
fn d2_indexing_is_flagged_only_in_the_parser_trio() {
    let hits = findings(
        "d2_indexing.rs",
        "timestream",
        "crates/timestream/src/codec.rs",
    );
    assert_eq!(rules_of(&hits), ["fail-closed"]);
    assert!(hits[0].message.contains("indexing"));
    // Indexing is allowed in serving (only panicking macros are not).
    assert!(findings("d2_indexing.rs", "serving", "crates/serving/src/x.rs").is_empty());
}

#[test]
fn d3_raw_write_is_flagged_outside_the_helpers() {
    let hits = findings(
        "d3_rawwrite.rs",
        "timestream",
        "crates/timestream/src/wal.rs",
    );
    assert_eq!(rules_of(&hits), ["durability"]);
    assert!(hits[0].message.contains("atomic_write"));
}

#[test]
fn d4_unknown_metric_is_flagged_everywhere() {
    let hits = findings("d4_metric.rs", "analysis", "crates/analysis/src/x.rs");
    assert_eq!(rules_of(&hits), ["metrics-contract"]);
    assert!(hits[0].message.contains("spotlake_bogus_metric_total"));
}

#[test]
fn d5_narrowing_cast_is_flagged_in_the_parser_trio() {
    let hits = findings("d5_cast.rs", "timestream", "crates/timestream/src/codec.rs");
    assert_eq!(rules_of(&hits), ["unchecked-arith"]);
    assert!(hits[0].message.contains("as u32"));
    assert!(findings("d5_cast.rs", "timestream", "crates/timestream/src/store.rs").is_empty());
}

#[test]
fn clean_fixture_has_no_findings() {
    assert!(findings("clean.rs", "timestream", "crates/timestream/src/codec.rs").is_empty());
}

#[test]
fn allow_directives_suppress_with_justification() {
    assert!(findings("allowed.rs", "cloud-sim", "crates/cloud-sim/src/x.rs").is_empty());
}

#[test]
fn malformed_allow_directives_are_themselves_findings() {
    let hits = findings("bad_allow.rs", "cloud-sim", "crates/cloud-sim/src/x.rs");
    assert_eq!(rules_of(&hits), ["allow-syntax", "allow-syntax"]);
    assert!(hits[0].message.contains("justification"));
    assert!(hits[1].message.contains("nonsense"));
}

#[test]
fn cfg_test_regions_are_exempt() {
    assert!(findings("test_mod.rs", "serving", "crates/serving/src/x.rs").is_empty());
}

// ---- concurrency rules -------------------------------------------------

/// Like `findings`, but through `analyze_file` so the intra-file slice
/// of the lock-order cycle check runs too (the `--check-file` path).
fn file_findings(name: &str, as_crate: &str, as_path: &str) -> Vec<Finding> {
    let (_, source) = fixture(name);
    analyze_file(as_crate, as_path, &source)
}

#[test]
fn c1_opposite_lock_orders_are_a_cycle() {
    let hits = file_findings("c1_lockorder.rs", "obs", "crates/obs/src/x.rs");
    assert_eq!(rules_of(&hits), ["lock-order"]);
    assert!(hits[0].message.contains("fn ab"), "{}", hits[0].message);
    assert!(hits[0].message.contains("fn ba"), "{}", hits[0].message);
    // Concurrency rules only apply to the threaded crates.
    assert!(file_findings("c1_lockorder.rs", "cloud-sim", "crates/cloud-sim/src/x.rs").is_empty());
}

#[test]
fn c1_consistent_lock_order_is_clean() {
    let src = "\
use std::sync::{Mutex, MutexGuard, PoisonError};
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
pub fn one(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 { let ga = lock(a); let gb = lock(b); *ga + *gb }
pub fn two(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 { let ga = lock(a); let gb = lock(b); *gb + *ga }
";
    assert!(analyze_file("obs", "crates/obs/src/x.rs", src).is_empty());
}

#[test]
fn c2_guard_across_file_io_is_flagged() {
    let hits = file_findings("c2_holdblocking.rs", "obs", "crates/obs/src/x.rs");
    assert_eq!(rules_of(&hits), ["hold-across-blocking"]);
    assert!(hits[0].message.contains("fs::write"), "{}", hits[0].message);
    assert!(hits[0].message.contains("`m`"), "{}", hits[0].message);
}

#[test]
fn c2_blocking_through_the_guard_itself_is_exempt() {
    // The shared-receiver worker idiom: the lock exists to serialize
    // access to the Receiver, so recv *through the guard* is its purpose.
    let src = "\
use std::sync::mpsc::Receiver;
use std::sync::{Mutex, MutexGuard, PoisonError};
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
pub fn pump(rx: &Mutex<Receiver<u8>>) {
    loop {
        let x = match lock(rx).recv() {
            Ok(x) => x,
            Err(_) => break,
        };
        drop(x);
    }
}
";
    assert!(analyze_file("serving", "crates/serving/src/x.rs", src).is_empty());
}

#[test]
fn c3_unwrap_on_lock_is_poison_unsafe() {
    let hits = file_findings("c3_lockunwrap.rs", "obs", "crates/obs/src/x.rs");
    assert_eq!(rules_of(&hits), ["poison-safe"]);
    assert!(
        hits[0].message.contains("PoisonError::into_inner"),
        "{}",
        hits[0].message
    );
    // Poison-safety is a serving/obs requirement; timestream (outside
    // the parser trio) is out of scope.
    assert!(file_findings(
        "c3_lockunwrap.rs",
        "timestream",
        "crates/timestream/src/store.rs"
    )
    .is_empty());
}

#[test]
fn c4_unbounded_channel_and_detached_spawn_are_flagged() {
    let hits = file_findings("c4_channel.rs", "serving", "crates/serving/src/x.rs");
    assert_eq!(rules_of(&hits), ["channel-topology", "channel-topology"]);
    assert!(
        hits[0].message.contains("sync_channel"),
        "{}",
        hits[0].message
    );
    assert!(hits[1].message.contains("detached"), "{}", hits[1].message);
    // Channel topology is a serving/collector rule.
    assert!(file_findings("c4_channel.rs", "obs", "crates/obs/src/x.rs").is_empty());
}

#[test]
fn c4_bounded_channel_with_joined_spawn_is_clean() {
    let src = "\
pub fn fanout() {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(8);
    let h = std::thread::spawn(move || drop(tx));
    drop(rx);
    h.join().ok();
}
";
    assert!(analyze_file("serving", "crates/serving/src/x.rs", src).is_empty());
}

#[test]
fn c5_guard_captured_into_spawn_is_flagged() {
    let hits = file_findings("c5_guardspawn.rs", "obs", "crates/obs/src/x.rs");
    assert_eq!(rules_of(&hits), ["guard-into-spawn"]);
    assert!(hits[0].message.contains("`g`"), "{}", hits[0].message);
}

// ---- binary contract ---------------------------------------------------

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spotlake-lint"))
}

#[test]
fn binary_exits_nonzero_with_diagnostics_on_violation() {
    let (path, _) = fixture("d1_wallclock.rs");
    let out = lint_bin()
        .args(["--check-file"])
        .arg(&path)
        .args([
            "--as-crate",
            "cloud-sim",
            "--as-path",
            "crates/cloud-sim/src/x.rs",
        ])
        .args(["--json", "-"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/cloud-sim/src/x.rs:2: [determinism]"),
        "{stdout}"
    );
    assert!(stdout.contains("\"version\":1"), "{stdout}");
    assert!(stdout.contains("\"total\":1"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_clean_file() {
    let (path, _) = fixture("clean.rs");
    let out = lint_bin()
        .args(["--check-file"])
        .arg(&path)
        .args([
            "--as-crate",
            "timestream",
            "--as-path",
            "crates/timestream/src/codec.rs",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn binary_exits_two_on_usage_error() {
    let out = lint_bin()
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_lists_rules() {
    // The listing is the complete rule table, in order: a new rule
    // cannot ship without appearing here (and thus in the docs test).
    let out = lint_bin()
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let expected: Vec<&str> = spotlake_lint::RULES.iter().map(|(name, _)| *name).collect();
    assert_eq!(listed, expected);
    assert_eq!(
        expected,
        [
            "determinism",
            "fail-closed",
            "durability",
            "metrics-contract",
            "unchecked-arith",
            "allow-syntax",
            "lock-order",
            "hold-across-blocking",
            "poison-safe",
            "channel-topology",
            "guard-into-spawn",
        ]
    );
}

#[test]
fn workspace_self_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = lint_bin()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
}
