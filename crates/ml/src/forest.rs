//! Random forests: bagging over CART trees.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random-forest classifier with scikit-learn-like defaults: 100 trees,
/// bootstrap sampling, √d features per split, unlimited depth.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: Option<usize>,
    trees: Vec<DecisionTree>,
    classes: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 100,
            max_depth: None,
            trees: Vec::new(),
            classes: 0,
        }
    }
}

impl RandomForest {
    /// An unfitted forest with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of trees.
    pub fn with_trees(mut self, n_trees: usize) -> Self {
        assert!(n_trees > 0, "a forest needs at least one tree");
        self.n_trees = n_trees;
        self
    }

    /// Sets a depth limit.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Fits the forest: each tree sees a bootstrap resample of `data` and
    /// considers √d random features per split.
    pub fn fit(mut self, data: &Dataset, seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let mtry = ((data.width() as f64).sqrt().round() as usize).max(1);
        let config = TreeConfig {
            max_depth: self.max_depth,
            min_samples_split: 2,
            max_features: Some(mtry),
        };
        self.classes = data.classes();
        self.trees = (0..self.n_trees)
            .map(|t| {
                let sample: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                let boot = data.subset(&sample);
                DecisionTree::fit(&boot, config, seed ^ (t as u64).wrapping_mul(0x9E37_79B9))
            })
            .collect();
        self
    }

    /// Majority-vote prediction (ties break toward the lower class index,
    /// deterministically).
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted or `row` has the wrong width.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict on an unfitted forest");
        let mut votes = vec![0usize; self.classes];
        for tree in &self.trees {
            votes[tree.predict(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Permutation feature importance: for each feature, the drop in
    /// accuracy on `data` when that feature's column is shuffled (mean over
    /// `repeats` shuffles). Positive values mean the model relies on the
    /// feature; ~0 means it is ignored.
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted or `repeats` is zero.
    pub fn permutation_importance(&self, data: &Dataset, repeats: usize, seed: u64) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "importance on an unfitted forest");
        assert!(repeats > 0, "at least one repeat is required");
        let baseline = accuracy_of(self, data);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut importances = vec![0.0; data.width()];
        for (feature, importance) in importances.iter_mut().enumerate() {
            let mut drop_sum = 0.0;
            for _ in 0..repeats {
                // Shuffle the feature column across rows.
                let mut perm: Vec<usize> = (0..data.len()).collect();
                for i in (1..perm.len()).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                let mut hits = 0usize;
                for (i, &p) in perm.iter().enumerate() {
                    let mut row = data.row(i).to_vec();
                    row[feature] = data.row(p)[feature];
                    if self.predict(&row) == data.label(i) {
                        hits += 1;
                    }
                }
                drop_sum += baseline - hits as f64 / data.len() as f64;
            }
            *importance = drop_sum / repeats as f64;
        }
        importances
    }
}

fn accuracy_of(forest: &RandomForest, data: &Dataset) -> f64 {
    let hits = (0..data.len())
        .filter(|&i| forest.predict(data.row(i)) == data.label(i))
        .count();
    hits as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Three noisy Gaussian-ish blobs.
    fn blobs(seed: u64, n_per_class: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (4.0, 4.0), (0.0, 5.0)];
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                features.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(label);
            }
        }
        Dataset::new(features, labels, 3).unwrap()
    }

    #[test]
    fn learns_blobs() {
        let data = blobs(1, 40);
        let (train, test) = data.split(0.25, 2);
        let forest = RandomForest::default().with_trees(30).fit(&train, 3);
        let predictions = forest.predict_all(&test);
        let acc = accuracy(test.labels(), &predictions);
        assert!(acc > 0.9, "accuracy {acc} too low for separable blobs");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(1, 20);
        let a = RandomForest::default().with_trees(10).fit(&data, 7);
        let b = RandomForest::default().with_trees(10).fit(&data, 7);
        for i in 0..data.len() {
            assert_eq!(a.predict(data.row(i)), b.predict(data.row(i)));
        }
    }

    #[test]
    fn tree_count_and_depth_limit() {
        let data = blobs(1, 10);
        let forest = RandomForest::default()
            .with_trees(5)
            .with_max_depth(1)
            .fit(&data, 0);
        assert_eq!(forest.tree_count(), 5);
    }

    #[test]
    #[should_panic(expected = "unfitted")]
    fn unfitted_predict_panics() {
        RandomForest::default().predict(&[1.0]);
    }

    #[test]
    fn permutation_importance_finds_informative_features() {
        // Feature 0 carries the label; feature 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(3);
        let features: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    (i % 2) as f64 + rng.gen_range(-0.1..0.1),
                    rng.gen_range(0.0..1.0),
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..120).map(|i| i % 2).collect();
        let data = Dataset::new(features, labels, 2).unwrap();
        let forest = RandomForest::default().with_trees(20).fit(&data, 1);
        let importance = forest.permutation_importance(&data, 3, 9);
        assert!(
            importance[0] > importance[1] + 0.2,
            "informative {:.3} vs noise {:.3}",
            importance[0],
            importance[1]
        );
        assert!(importance[1].abs() < 0.15, "noise feature should be ~0");
    }
}
