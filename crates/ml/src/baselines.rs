//! The current-value threshold heuristics of Table 4.
//!
//! Each heuristic looks at one *current* value (the spot placement score,
//! the interruption-free score, or the cost savings) and maps it to the
//! three outcome classes with two thresholds: value ≥ `hi` → the "safe"
//! class, value ≥ `lo` → the middle class, else the "fail" class. The paper
//! fixed the SPS mapping (3.0 → NoInterrupt, 2.0 → Interrupted,
//! 1.0 → NoFulfill) and "set the thresholds for interruption-free score and
//! cost savings empirically after numerous trials" — reproduced here by
//! [`ThresholdHeuristic::fit`]'s grid search.

use crate::metrics::accuracy;

/// A two-threshold, three-class heuristic over a single feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdHeuristic {
    /// Values ≥ `hi` predict `hi_class`.
    pub hi: f64,
    /// Values in `[lo, hi)` predict `mid_class`; below `lo`, `lo_class`.
    pub lo: f64,
    /// Class predicted for high values.
    pub hi_class: usize,
    /// Class predicted for middle values.
    pub mid_class: usize,
    /// Class predicted for low values.
    pub lo_class: usize,
}

impl ThresholdHeuristic {
    /// The paper's fixed SPS heuristic: score 3.0 → `hi_class`, 2.0 →
    /// `mid_class`, 1.0 → `lo_class`.
    pub fn sps(hi_class: usize, mid_class: usize, lo_class: usize) -> Self {
        ThresholdHeuristic {
            hi: 2.5,
            lo: 1.5,
            hi_class,
            mid_class,
            lo_class,
        }
    }

    /// Predicts the class of a single value.
    pub fn predict(&self, value: f64) -> usize {
        if value >= self.hi {
            self.hi_class
        } else if value >= self.lo {
            self.mid_class
        } else {
            self.lo_class
        }
    }

    /// Predicts a batch.
    pub fn predict_all(&self, values: &[f64]) -> Vec<usize> {
        values.iter().map(|&v| self.predict(v)).collect()
    }

    /// Grid-searches `(lo, hi)` threshold pairs over the candidate cut
    /// points to maximize training accuracy — the paper's "set ...
    /// empirically after numerous trials". Candidates are the midpoints of
    /// consecutive distinct values.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `labels` differ in length or are empty.
    pub fn fit(
        values: &[f64],
        labels: &[usize],
        hi_class: usize,
        mid_class: usize,
        lo_class: usize,
    ) -> ThresholdHeuristic {
        assert_eq!(values.len(), labels.len(), "length mismatch");
        assert!(!values.is_empty(), "empty training set");
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        let mut cuts: Vec<f64> = sorted.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        // Also allow degenerate "all one side" thresholds.
        cuts.insert(0, sorted[0] - 1.0);
        cuts.push(sorted[sorted.len() - 1] + 1.0);

        let mut best = ThresholdHeuristic {
            hi: cuts[cuts.len() - 1],
            lo: cuts[0],
            hi_class,
            mid_class,
            lo_class,
        };
        let mut best_acc = -1.0;
        for (i, &lo) in cuts.iter().enumerate() {
            for &hi in &cuts[i..] {
                let candidate = ThresholdHeuristic {
                    hi,
                    lo,
                    hi_class,
                    mid_class,
                    lo_class,
                };
                let acc = accuracy(labels, &candidate.predict_all(values));
                if acc > best_acc {
                    best_acc = acc;
                    best = candidate;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sps_mapping_matches_paper() {
        let h = ThresholdHeuristic::sps(0, 1, 2);
        assert_eq!(h.predict(3.0), 0, "score 3.0 -> NoInterrupt");
        assert_eq!(h.predict(2.0), 1, "score 2.0 -> Interrupted");
        assert_eq!(h.predict(1.0), 2, "score 1.0 -> NoFulfill");
    }

    #[test]
    fn fit_recovers_separating_thresholds() {
        // Values 0..10: label 2 below 3, label 1 in 3..7, label 0 above.
        let values: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let labels: Vec<usize> = values
            .iter()
            .map(|&v| {
                if v >= 7.0 {
                    0
                } else if v >= 3.0 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let h = ThresholdHeuristic::fit(&values, &labels, 0, 1, 2);
        assert_eq!(accuracy(&labels, &h.predict_all(&values)), 1.0);
        assert!(h.lo > 2.0 && h.lo < 3.5);
        assert!(h.hi > 6.0 && h.hi < 7.5);
    }

    #[test]
    fn fit_handles_two_effective_classes() {
        // Only two labels present: the grid search can park one threshold
        // at a degenerate cut.
        let values = [1.0, 1.0, 5.0, 5.0];
        let labels = [2, 2, 0, 0];
        let h = ThresholdHeuristic::fit(&values, &labels, 0, 1, 2);
        assert_eq!(accuracy(&labels, &h.predict_all(&values)), 1.0);
    }

    #[test]
    fn fit_single_value() {
        let h = ThresholdHeuristic::fit(&[2.0, 2.0], &[1, 1], 0, 1, 2);
        assert_eq!(h.predict(2.0), 1);
    }
}
