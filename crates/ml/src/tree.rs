//! CART decision trees with Gini impurity.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (`None` = grow until pure, scikit-learn's default).
    pub max_depth: Option<usize>,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all; forests pass √d).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    width: usize,
}

impl DecisionTree {
    /// Fits a tree on `data`. `seed` drives feature subsampling (only
    /// relevant when `config.max_features` is set).
    pub fn fit(data: &Dataset, config: TreeConfig, seed: u64) -> DecisionTree {
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let root = grow(data, &indices, &config, 0, &mut rng);
        DecisionTree {
            root,
            width: data.width(),
        }
    }

    /// Predicts the class of a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong width.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.width, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of decision nodes plus leaves.
    pub fn node_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn class_counts(data: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.classes()];
    for &i in indices {
        counts[data.label(i)] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map(|(i, _)| i)
        .expect("at least one class")
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn grow(
    data: &Dataset,
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
    rng: &mut StdRng,
) -> Node {
    let counts = class_counts(data, indices);
    let node_gini = gini(&counts, indices.len());
    let depth_capped = config.max_depth.is_some_and(|d| depth >= d);
    if node_gini == 0.0 || indices.len() < config.min_samples_split || depth_capped {
        return Node::Leaf {
            class: majority(&counts),
        };
    }

    // Candidate features, optionally subsampled (random forest).
    let mut features: Vec<usize> = (0..data.width()).collect();
    if let Some(m) = config.max_features {
        features.shuffle(rng);
        features.truncate(m.max(1));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
    let mut sorted = indices.to_vec();
    for &feature in &features {
        sorted.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
        let mut left_counts = vec![0usize; data.classes()];
        let mut right_counts = counts.clone();
        for cut in 1..sorted.len() {
            let moved = sorted[cut - 1];
            left_counts[data.label(moved)] += 1;
            right_counts[data.label(moved)] -= 1;
            let lo = data.row(sorted[cut - 1])[feature];
            let hi = data.row(sorted[cut])[feature];
            if lo == hi {
                continue; // cannot split between equal values
            }
            let threshold = (lo + hi) / 2.0;
            let n = sorted.len() as f64;
            let impurity = (cut as f64 / n) * gini(&left_counts, cut)
                + ((n - cut as f64) / n) * gini(&right_counts, sorted.len() - cut);
            if best.is_none_or(|(_, _, b)| impurity < b) {
                best = Some((feature, threshold, impurity));
            }
        }
    }

    // Split on the best candidate even when it does not immediately reduce
    // impurity (scikit-learn behaves the same way — this is what lets a
    // greedy tree still fit XOR-like interactions).
    let Some((feature, threshold, _impurity)) = best else {
        return Node::Leaf {
            class: majority(&counts),
        };
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| data.row(i)[feature] <= threshold);
    debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(data, &left_idx, config, depth + 1, rng)),
        right: Box::new(grow(data, &right_idx, config, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR is not linearly separable but a depth-2 tree handles it.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, l) in &[
            (0.0, 0.0, 0usize),
            (0.0, 1.0, 1),
            (1.0, 0.0, 1),
            (1.0, 1.0, 0),
        ] {
            for jitter in 0..5 {
                let j = jitter as f64 * 0.01;
                features.push(vec![a + j, b + j]);
                labels.push(l);
            }
        }
        Dataset::new(features, labels, 2).unwrap()
    }

    #[test]
    fn fits_xor_perfectly() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, TreeConfig::default(), 0);
        for i in 0..data.len() {
            assert_eq!(tree.predict(data.row(i)), data.label(i));
        }
    }

    #[test]
    fn depth_limit_truncates() {
        let data = xor_dataset();
        let stump = DecisionTree::fit(
            &data,
            TreeConfig {
                max_depth: Some(0),
                ..TreeConfig::default()
            },
            0,
        );
        assert_eq!(stump.node_count(), 1, "depth 0 is a single leaf");
        let full = DecisionTree::fit(&data, TreeConfig::default(), 0);
        assert!(full.node_count() > 1);
    }

    #[test]
    fn constant_labels_give_single_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1], 2).unwrap();
        let tree = DecisionTree::fit(&data, TreeConfig::default(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn identical_features_cannot_split() {
        let data = Dataset::new(
            vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]],
            vec![0, 1, 0, 1],
            2,
        )
        .unwrap();
        let tree = DecisionTree::fit(&data, TreeConfig::default(), 0);
        assert_eq!(tree.node_count(), 1, "no threshold separates equal values");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn predict_checks_width() {
        let data = xor_dataset();
        let tree = DecisionTree::fit(&data, TreeConfig::default(), 0);
        tree.predict(&[1.0]);
    }
}
