//! Predictors for the spot-instance status classification task of
//! Section 5.5.
//!
//! The paper trains "a simple random forest model using a Python
//! Scikit-Learn package with default parameters without tuning" on the
//! archive's historical scores, and compares it against three heuristics
//! that look only at a single *current* value. This crate implements both
//! sides from scratch:
//!
//! * [`DecisionTree`] — CART with Gini impurity.
//! * [`RandomForest`] — bagging + feature subsampling + majority vote,
//!   defaults matching scikit-learn's `RandomForestClassifier` (100 trees,
//!   √d features per split, unlimited depth).
//! * [`ThresholdHeuristic`] — the IF / SPS / CostSave baselines: two
//!   thresholds mapping one current value to the three outcome classes,
//!   with the paper's "set empirically after numerous trials" reproduced by
//!   a small grid search ([`ThresholdHeuristic::fit`]).
//! * [`metrics`] — accuracy, confusion matrix, and macro-averaged F1.
//!
//! # Example
//!
//! ```
//! use spotlake_ml::{Dataset, RandomForest};
//!
//! // A toy separable problem.
//! let features = vec![vec![0.0], vec![0.1], vec![1.0], vec![1.1]];
//! let labels = vec![0, 0, 1, 1];
//! let data = Dataset::new(features, labels, 2).unwrap();
//! let forest = RandomForest::default().fit(&data, 42);
//! assert_eq!(forest.predict(&[1.05]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod dataset;
mod forest;
pub mod metrics;
mod tree;

pub use baselines::ThresholdHeuristic;
pub use dataset::{Dataset, DatasetError};
pub use forest::RandomForest;
pub use tree::{DecisionTree, TreeConfig};
