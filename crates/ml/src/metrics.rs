//! Classification metrics: accuracy, confusion matrix, F1.

/// Fraction of predictions matching the truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// The confusion matrix: `m[t][p]` counts samples of true class `t`
/// predicted as `p`.
///
/// # Panics
///
/// Panics if the slices differ in length or a label is `>= classes`.
pub fn confusion_matrix(truth: &[usize], predicted: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let mut m = vec![vec![0usize; classes]; classes];
    for (&t, &p) in truth.iter().zip(predicted) {
        assert!(t < classes && p < classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

/// Per-class F1 scores. A class absent from both truth and predictions
/// scores 0.0 (scikit-learn's zero-division default).
pub fn f1_per_class(truth: &[usize], predicted: &[usize], classes: usize) -> Vec<f64> {
    let m = confusion_matrix(truth, predicted, classes);
    (0..classes)
        .map(|c| {
            let tp = m[c][c] as f64;
            let fp: f64 = (0..classes)
                .filter(|&t| t != c)
                .map(|t| m[t][c] as f64)
                .sum();
            let fn_: f64 = (0..classes)
                .filter(|&p| p != c)
                .map(|p| m[c][p] as f64)
                .sum();
            if tp == 0.0 {
                0.0
            } else {
                2.0 * tp / (2.0 * tp + fp + fn_)
            }
        })
        .collect()
}

/// Macro-averaged F1: the unweighted mean of per-class F1 scores.
pub fn f1_macro(truth: &[usize], predicted: &[usize], classes: usize) -> f64 {
    let per = f1_per_class(truth, predicted, classes);
    per.iter().sum::<f64>() / classes as f64
}

/// Support-weighted F1 (scikit-learn's `average="weighted"`).
pub fn f1_weighted(truth: &[usize], predicted: &[usize], classes: usize) -> f64 {
    let per = f1_per_class(truth, predicted, classes);
    let mut support = vec![0usize; classes];
    for &t in truth {
        support[t] += 1;
    }
    let total: usize = support.iter().sum();
    if total == 0 {
        return 0.0;
    }
    per.iter()
        .zip(&support)
        .map(|(f, &s)| f * s as f64 / total as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = [0, 1, 2, 1];
        assert_eq!(accuracy(&truth, &truth), 1.0);
        assert_eq!(f1_macro(&truth, &truth, 3), 1.0);
        assert_eq!(f1_weighted(&truth, &truth, 3), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        let m = confusion_matrix(&truth, &pred, 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
        assert_eq!(accuracy(&truth, &pred), 0.75);
    }

    #[test]
    fn f1_handles_absent_class() {
        // Class 2 never appears: per-class F1 is 0, macro is pulled down.
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 1];
        let per = f1_per_class(&truth, &pred, 3);
        assert_eq!(per, vec![1.0, 1.0, 0.0]);
        assert!((f1_macro(&truth, &pred, 3) - 2.0 / 3.0).abs() < 1e-12);
        // Weighted F1 ignores the zero-support class.
        assert_eq!(f1_weighted(&truth, &pred, 3), 1.0);
    }

    #[test]
    fn known_f1_value() {
        // One-class view: tp=1, fp=1, fn=1 -> F1 = 2/4 = 0.5.
        let truth = [0, 0, 1];
        let pred = [0, 1, 0];
        let per = f1_per_class(&truth, &pred, 2);
        assert!((per[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }
}
