//! Datasets: feature matrices with class labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature and label lengths differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Rows have inconsistent widths.
    RaggedRows,
    /// A label was out of the declared class range.
    BadLabel {
        /// The offending label.
        label: usize,
        /// The declared class count.
        classes: usize,
    },
    /// The dataset is empty.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            DatasetError::RaggedRows => write!(f, "feature rows have inconsistent widths"),
            DatasetError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DatasetError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl Error for DatasetError {}

/// A classification dataset: rows of `f64` features plus `usize` labels in
/// `0..classes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] for empty input, ragged rows, mismatched
    /// lengths, or out-of-range labels.
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        classes: usize,
    ) -> Result<Self, DatasetError> {
        if features.is_empty() {
            return Err(DatasetError::Empty);
        }
        if features.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: features.len(),
                labels: labels.len(),
            });
        }
        let width = features[0].len();
        if features.iter().any(|r| r.len() != width) {
            return Err(DatasetError::RaggedRows);
        }
        if let Some(&label) = labels.iter().find(|&&l| l >= classes) {
            return Err(DatasetError::BadLabel { label, classes });
        }
        Ok(Dataset {
            features,
            labels,
            classes,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no rows (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per row.
    pub fn width(&self) -> usize {
        self.features[0].len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Splits into (train, test) with `test_fraction` of rows (at least one
    /// row each side), shuffled with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `(0, 1)` or the dataset has
    /// fewer than two rows.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction) && test_fraction > 0.0,
            "test_fraction must be in (0, 1)"
        );
        assert!(self.len() >= 2, "need at least two rows to split");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let test_n =
            ((self.len() as f64 * test_fraction).round() as usize).clamp(1, self.len() - 1);
        let (test_idx, train_idx) = idx.split_at(test_n);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// A dataset holding the given row indices (duplicates allowed — used
    /// by bootstrap sampling).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..10).map(|i| i % 3).collect(),
            3,
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        assert_eq!(Dataset::new(vec![], vec![], 2), Err(DatasetError::Empty));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![0, 1], 2),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert_eq!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 2),
            Err(DatasetError::RaggedRows)
        );
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![5], 3),
            Err(DatasetError::BadLabel { .. })
        ));
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.width(), 2);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.row(3), &[3.0, 6.0]);
        assert_eq!(d.label(4), 1);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let (train, test) = d.split(0.3, 7);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 3);
        // Deterministic for a seed.
        let (train2, _) = d.split(0.3, 7);
        assert_eq!(train, train2);
        // Different seeds shuffle differently (very likely).
        let (train3, _) = d.split(0.3, 8);
        assert_ne!(train, train3);
    }

    #[test]
    fn subset_with_duplicates() {
        let d = toy();
        let s = d.subset(&[0, 0, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), s.row(1));
    }
}
