//! Problem definition shared by all solvers.

use std::error::Error;
use std::fmt;

/// One item to pack: a key (e.g. a region) and an integer size (e.g. its
/// availability-zone count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Item<K> {
    /// Caller-chosen identity of the item.
    pub key: K,
    /// Item size; must be `1..=capacity` to be packable.
    pub size: u32,
}

impl<K> Item<K> {
    /// Creates an item.
    pub fn new(key: K, size: u32) -> Self {
        Item { key, size }
    }
}

/// Error returned when an instance cannot be packed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// Bin capacity must be positive.
    ZeroCapacity,
    /// An item was larger than the bin capacity (index into the input).
    Oversized {
        /// Index of the offending item in the input slice.
        index: usize,
        /// The item's size.
        size: u32,
        /// The bin capacity.
        capacity: u32,
    },
    /// An item had size zero (index into the input).
    ZeroSized {
        /// Index of the offending item in the input slice.
        index: usize,
    },
    /// The exact solver exhausted its node budget before proving
    /// optimality.
    NodeLimit {
        /// The configured budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::ZeroCapacity => write!(f, "bin capacity must be positive"),
            PackError::Oversized {
                index,
                size,
                capacity,
            } => write!(
                f,
                "item {index} has size {size}, larger than bin capacity {capacity}"
            ),
            PackError::ZeroSized { index } => write!(f, "item {index} has size zero"),
            PackError::NodeLimit { limit } => {
                write!(f, "exact solver exceeded its node budget of {limit}")
            }
        }
    }
}

impl Error for PackError {}

/// Validates a problem instance; every solver calls this first.
pub(crate) fn validate<K>(items: &[Item<K>], capacity: u32) -> Result<(), PackError> {
    if capacity == 0 {
        return Err(PackError::ZeroCapacity);
    }
    for (index, item) in items.iter().enumerate() {
        if item.size == 0 {
            return Err(PackError::ZeroSized { index });
        }
        if item.size > capacity {
            return Err(PackError::Oversized {
                index,
                size: item.size,
                capacity,
            });
        }
    }
    Ok(())
}

/// A solution: items grouped into bins, none exceeding the capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing<K> {
    bins: Vec<Vec<Item<K>>>,
    capacity: u32,
}

impl<K> Packing<K> {
    pub(crate) fn new(bins: Vec<Vec<Item<K>>>, capacity: u32) -> Self {
        debug_assert!(bins
            .iter()
            .all(|b| b.iter().map(|i| i.size).sum::<u32>() <= capacity));
        debug_assert!(bins.iter().all(|b| !b.is_empty()));
        Packing { bins, capacity }
    }

    /// The bins, each a non-empty group of items.
    pub fn bins(&self) -> &[Vec<Item<K>>] {
        &self.bins
    }

    /// Number of bins used (= number of queries needed).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// The bin capacity the packing was produced for.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total size packed.
    pub fn total_size(&self) -> u32 {
        self.bins
            .iter()
            .flat_map(|b| b.iter().map(|i| i.size))
            .sum()
    }

    /// Consumes the packing, returning the grouped keys only.
    pub fn into_key_groups(self) -> Vec<Vec<K>> {
        self.bins
            .into_iter()
            .map(|bin| bin.into_iter().map(|item| item.key).collect())
            .collect()
    }
}

/// The L1 lower bound on the number of bins: `ceil(total size / capacity)`.
/// No packing can use fewer bins.
pub fn lower_bound<K>(items: &[Item<K>], capacity: u32) -> usize {
    if capacity == 0 {
        return 0;
    }
    let total: u64 = items.iter().map(|i| u64::from(i.size)).sum();
    total.div_ceil(u64::from(capacity)) as usize
}

/// Martello & Toth's L2 lower bound: for each threshold `k ≤ capacity/2`,
/// items larger than `capacity − k` each need their own bin, items in
/// `(capacity/2, capacity − k]` cannot share with each other, and the small
/// items in `[k, capacity/2]` can at best fill the big items' slack. L2
/// dominates L1 and is what the exact solver prunes with.
pub fn lower_bound_l2<K>(items: &[Item<K>], capacity: u32) -> usize {
    if capacity == 0 {
        return 0;
    }
    let mut best = lower_bound(items, capacity);
    for k in 1..=capacity / 2 {
        // n1: items with size > capacity - k (cannot pair with anything
        // of size >= k).
        // n2: items with size in (capacity/2, capacity - k].
        // s2: slack the n2 bins have left; s3: total size of items in
        // [k, capacity/2].
        let mut n1 = 0u64;
        let mut n2 = 0u64;
        let mut slack2 = 0u64;
        let mut small_total = 0u64;
        for item in items {
            let size = u64::from(item.size);
            if size > u64::from(capacity - k) {
                n1 += 1;
            } else if size > u64::from(capacity) / 2 {
                n2 += 1;
                slack2 += u64::from(capacity) - size;
            } else if size >= u64::from(k) {
                small_total += size;
            }
        }
        let overflow = small_total.saturating_sub(slack2);
        let extra = overflow.div_ceil(u64::from(capacity));
        best = best.max((n1 + n2 + extra) as usize);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_bad_instances() {
        assert_eq!(
            validate(&[Item::new("a", 1)], 0),
            Err(PackError::ZeroCapacity)
        );
        assert_eq!(
            validate(&[Item::new("a", 0)], 5),
            Err(PackError::ZeroSized { index: 0 })
        );
        assert_eq!(
            validate(&[Item::new("a", 7)], 5),
            Err(PackError::Oversized {
                index: 0,
                size: 7,
                capacity: 5
            })
        );
        assert!(validate(&[Item::new("a", 5)], 5).is_ok());
    }

    #[test]
    fn lower_bound_is_ceiling() {
        let items = vec![Item::new(0, 3), Item::new(1, 3), Item::new(2, 3)];
        assert_eq!(lower_bound(&items, 10), 1);
        assert_eq!(lower_bound(&items, 4), 3);
        assert_eq!(lower_bound(&items, 3), 3);
        assert_eq!(lower_bound::<u32>(&[], 10), 0);
    }

    #[test]
    fn packing_accessors() {
        let p = Packing::new(
            vec![
                vec![Item::new("a", 4), Item::new("b", 3)],
                vec![Item::new("c", 5)],
            ],
            10,
        );
        assert_eq!(p.bin_count(), 2);
        assert_eq!(p.capacity(), 10);
        assert_eq!(p.total_size(), 12);
        assert_eq!(p.into_key_groups(), vec![vec!["a", "b"], vec!["c"]]);
    }

    #[test]
    fn error_messages() {
        let e = PackError::Oversized {
            index: 2,
            size: 11,
            capacity: 10,
        };
        assert_eq!(
            e.to_string(),
            "item 2 has size 11, larger than bin capacity 10"
        );
    }
}

#[cfg(test)]
mod l2_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l2_dominates_l1_on_known_instance() {
        // Three items of size 6 with capacity 10: L1 = ceil(18/10) = 2 but
        // no two can share a bin, so L2 = 3.
        let items: Vec<Item<usize>> = (0..3).map(|k| Item::new(k, 6)).collect();
        assert_eq!(lower_bound(&items, 10), 2);
        assert_eq!(lower_bound_l2(&items, 10), 3);
    }

    #[test]
    fn l2_counts_oversize_singletons() {
        // Sizes {9, 9, 1}: each 9 leaves one unit of slack, so the 1 rides
        // along -> L2 = 2 (= OPT).
        let items = vec![Item::new(0usize, 9), Item::new(1, 9), Item::new(2, 1)];
        assert_eq!(lower_bound_l2(&items, 10), 2);
        // Sizes {9, 9, 2}: the 2 no longer fits anywhere -> L2 = 3 (= OPT),
        // strictly better than L1 = 2.
        let items = vec![Item::new(0usize, 9), Item::new(1, 9), Item::new(2, 2)];
        assert_eq!(lower_bound(&items, 10), 2);
        assert_eq!(lower_bound_l2(&items, 10), 3);
    }

    proptest! {
        #[test]
        fn l2_is_sandwiched_between_l1_and_opt(
            raw in prop::collection::vec(1u32..=10, 1..12),
        ) {
            let items: Vec<Item<usize>> =
                raw.iter().enumerate().map(|(k, &s)| Item::new(k, s)).collect();
            let l1 = lower_bound(&items, 10);
            let l2 = lower_bound_l2(&items, 10);
            prop_assert!(l2 >= l1, "L2 {l2} below L1 {l1}");
            // Compare against the exact optimum.
            let opt = crate::exact::BranchAndBound::new()
                .pack(&items, 10)
                .unwrap()
                .bin_count();
            prop_assert!(l2 <= opt, "L2 {l2} exceeds OPT {opt} for {raw:?}");
        }
    }
}
