//! Bin-packing solvers for spot placement score query planning.
//!
//! Section 3.2 of the paper reduces placement-score query optimization to
//! bin packing: for one instance type, the *items* are regions (sized by the
//! number of availability zones supporting the type) and the *bin capacity*
//! is 10, the maximum number of placement scores a single query returns.
//! Packing regions into few bins packs them into few queries; across the
//! whole catalog this cut the paper's query count from 9,299 to 2,226
//! (≈ 4.5×).
//!
//! The paper used Google OR-Tools' CBC mixed-integer solver. This crate
//! provides a faithful replacement: an exact [`BranchAndBound`] solver plus
//! the classic [`first_fit_decreasing`] / [`best_fit_decreasing`] heuristics
//! and a [`next_fit`] baseline, so the ablation benches can compare solution
//! quality and runtime.
//!
//! # Example
//!
//! ```
//! use spotlake_binpack::{first_fit_decreasing, Item};
//!
//! # fn main() -> Result<(), spotlake_binpack::PackError> {
//! // Regions supporting p3.2xlarge, sized by AZ count (Figure 1's example).
//! let items = vec![
//!     Item::new("us-east-1", 4),
//!     Item::new("us-west-2", 3),
//!     Item::new("eu-west-1", 3),
//!     Item::new("ap-northeast-1", 2),
//! ];
//! let packing = first_fit_decreasing(&items, 10)?;
//! assert_eq!(packing.bin_count(), 2); // two queries instead of four
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod heuristics;
mod problem;

pub use exact::BranchAndBound;
pub use heuristics::{best_fit_decreasing, first_fit_decreasing, next_fit};
pub use problem::{lower_bound, lower_bound_l2, Item, PackError, Packing};
