//! Classic bin-packing heuristics.
//!
//! [`first_fit_decreasing`] is the workhorse (11/9 · OPT + 6/9 worst case);
//! [`best_fit_decreasing`] sometimes squeezes out one more bin;
//! [`next_fit`] is the cheap streaming baseline the ablation bench compares
//! against. All three run in `O(n log n)` or better.

use crate::problem::{validate, Item, PackError, Packing};

/// Sorts item indices by decreasing size (stable, so equal sizes keep input
/// order — this keeps solutions deterministic).
fn decreasing_order<K>(items: &[Item<K>]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| items[b].size.cmp(&items[a].size).then(a.cmp(&b)));
    idx
}

/// First-fit decreasing: place each item (largest first) into the first bin
/// with room, opening a new bin when none fits.
///
/// # Errors
///
/// Returns [`PackError`] if the capacity is zero or any item is zero-sized
/// or oversized.
pub fn first_fit_decreasing<K: Clone>(
    items: &[Item<K>],
    capacity: u32,
) -> Result<Packing<K>, PackError> {
    validate(items, capacity)?;
    let mut bins: Vec<(u32, Vec<Item<K>>)> = Vec::new();
    for &i in &decreasing_order(items) {
        let item = &items[i];
        match bins
            .iter_mut()
            .find(|(used, _)| used + item.size <= capacity)
        {
            Some((used, bin)) => {
                *used += item.size;
                bin.push(item.clone());
            }
            None => bins.push((item.size, vec![item.clone()])),
        }
    }
    Ok(Packing::new(
        bins.into_iter().map(|(_, b)| b).collect(),
        capacity,
    ))
}

/// Best-fit decreasing: place each item (largest first) into the *fullest*
/// bin that still has room.
///
/// # Errors
///
/// Returns [`PackError`] if the capacity is zero or any item is zero-sized
/// or oversized.
pub fn best_fit_decreasing<K: Clone>(
    items: &[Item<K>],
    capacity: u32,
) -> Result<Packing<K>, PackError> {
    validate(items, capacity)?;
    let mut bins: Vec<(u32, Vec<Item<K>>)> = Vec::new();
    for &i in &decreasing_order(items) {
        let item = &items[i];
        let best = bins
            .iter_mut()
            .filter(|(used, _)| used + item.size <= capacity)
            .max_by_key(|(used, _)| *used);
        match best {
            Some((used, bin)) => {
                *used += item.size;
                bin.push(item.clone());
            }
            None => bins.push((item.size, vec![item.clone()])),
        }
    }
    Ok(Packing::new(
        bins.into_iter().map(|(_, b)| b).collect(),
        capacity,
    ))
}

/// Next-fit: keep a single open bin; when an item does not fit, close it and
/// open a new one. The weakest (2 · OPT) but cheapest heuristic — the
/// ablation baseline.
///
/// # Errors
///
/// Returns [`PackError`] if the capacity is zero or any item is zero-sized
/// or oversized.
pub fn next_fit<K: Clone>(items: &[Item<K>], capacity: u32) -> Result<Packing<K>, PackError> {
    validate(items, capacity)?;
    let mut bins: Vec<Vec<Item<K>>> = Vec::new();
    let mut current: Vec<Item<K>> = Vec::new();
    let mut used = 0u32;
    for item in items {
        if used + item.size > capacity && !current.is_empty() {
            bins.push(std::mem::take(&mut current));
            used = 0;
        }
        used += item.size;
        current.push(item.clone());
    }
    if !current.is_empty() {
        bins.push(current);
    }
    Ok(Packing::new(bins, capacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::lower_bound;
    use proptest::prelude::*;

    fn sizes(p: &Packing<usize>) -> Vec<u32> {
        let mut v: Vec<u32> = p
            .bins()
            .iter()
            .map(|b| b.iter().map(|i| i.size).sum())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn ffd_packs_figure1_example() {
        // p3.2xlarge from Figure 1: regions with AZ counts that pack into
        // fewer queries under capacity 10.
        let items = vec![
            Item::new("us-east-1", 4),
            Item::new("us-west-2", 3),
            Item::new("eu-west-1", 3),
            Item::new("ap-northeast-1", 2),
            Item::new("ap-southeast-2", 2),
        ];
        let p = first_fit_decreasing(&items, 10).unwrap();
        assert_eq!(p.bin_count(), 2);
        assert_eq!(p.total_size(), 14);
    }

    #[test]
    fn empty_input_gives_empty_packing() {
        let p = first_fit_decreasing::<u32>(&[], 10).unwrap();
        assert_eq!(p.bin_count(), 0);
        let p = next_fit::<u32>(&[], 10).unwrap();
        assert_eq!(p.bin_count(), 0);
    }

    #[test]
    fn bfd_beats_or_ties_nf() {
        let items: Vec<Item<usize>> = [6u32, 5, 4, 3, 2, 2, 2]
            .iter()
            .copied()
            .enumerate()
            .map(|(k, s)| Item::new(k, s))
            .collect();
        let bfd = best_fit_decreasing(&items, 10).unwrap();
        let nf = next_fit(&items, 10).unwrap();
        assert!(bfd.bin_count() <= nf.bin_count());
    }

    #[test]
    fn deterministic_for_equal_sizes() {
        let items: Vec<Item<usize>> = (0..6).map(|k| Item::new(k, 3)).collect();
        let a = first_fit_decreasing(&items, 10).unwrap();
        let b = first_fit_decreasing(&items, 10).unwrap();
        assert_eq!(a, b);
        // Equal sizes keep input order within the decreasing sort.
        assert_eq!(a.bins()[0][0].key, 0);
    }

    #[test]
    fn all_heuristics_reject_invalid() {
        let oversized = vec![Item::new(0usize, 11)];
        assert!(first_fit_decreasing(&oversized, 10).is_err());
        assert!(best_fit_decreasing(&oversized, 10).is_err());
        assert!(next_fit(&oversized, 10).is_err());
    }

    proptest! {
        #[test]
        fn heuristics_produce_valid_packings(
            raw in prop::collection::vec(1u32..=10, 0..40),
            capacity in 10u32..=20,
        ) {
            let items: Vec<Item<usize>> =
                raw.iter().enumerate().map(|(k, &s)| Item::new(k, s)).collect();
            for pack in [
                first_fit_decreasing(&items, capacity).unwrap(),
                best_fit_decreasing(&items, capacity).unwrap(),
                next_fit(&items, capacity).unwrap(),
            ] {
                // Every bin within capacity and non-empty.
                for s in sizes(&pack) {
                    prop_assert!(s >= 1 && s <= capacity);
                }
                // Every item packed exactly once.
                let mut keys: Vec<usize> = pack
                    .bins()
                    .iter()
                    .flat_map(|b| b.iter().map(|i| i.key))
                    .collect();
                keys.sort_unstable();
                prop_assert_eq!(keys, (0..items.len()).collect::<Vec<_>>());
                // At least the L1 lower bound.
                prop_assert!(pack.bin_count() >= lower_bound(&items, capacity));
            }
        }

        #[test]
        fn ffd_at_most_nf(
            raw in prop::collection::vec(1u32..=10, 1..40),
        ) {
            let items: Vec<Item<usize>> =
                raw.iter().enumerate().map(|(k, &s)| Item::new(k, s)).collect();
            let ffd = first_fit_decreasing(&items, 10).unwrap().bin_count();
            let nf = next_fit(&items, 10).unwrap().bin_count();
            prop_assert!(ffd <= nf);
        }
    }
}
