//! Exact branch-and-bound bin-packing solver.
//!
//! Stands in for the paper's Google OR-Tools CBC mixed-integer solver
//! (Section 3.2). For query-planning instances (≤ 17 regions of size ≤ 6,
//! capacity 10) the search space is tiny and the solver is exact and fast;
//! a node budget guards against adversarial inputs.

use crate::heuristics::first_fit_decreasing;
use crate::problem::{lower_bound_l2, validate, Item, PackError, Packing};

/// Exact bin-packing solver via depth-first branch-and-bound.
///
/// Items are placed in decreasing-size order; at each step the current item
/// is tried in every open bin with room (skipping same-load duplicates) and
/// in one new bin. Branches are pruned against the incumbent (seeded with
/// first-fit decreasing) and the L1 lower bound, and the search stops early
/// when the incumbent matches the lower bound.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    node_limit: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_limit: 5_000_000,
        }
    }
}

impl BranchAndBound {
    /// Creates a solver with the default node budget (5 M nodes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node budget.
    pub fn with_node_limit(node_limit: u64) -> Self {
        BranchAndBound { node_limit }
    }

    /// Solves the instance to optimality.
    ///
    /// # Errors
    ///
    /// Returns [`PackError`] on invalid instances, or
    /// [`PackError::NodeLimit`] if the node budget is exhausted before the
    /// incumbent is proven optimal.
    pub fn pack<K: Clone>(
        &self,
        items: &[Item<K>],
        capacity: u32,
    ) -> Result<Packing<K>, PackError> {
        validate(items, capacity)?;
        if items.is_empty() {
            return Ok(Packing::new(Vec::new(), capacity));
        }

        // Decreasing order; ties keep input order for determinism.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| items[b].size.cmp(&items[a].size).then(a.cmp(&b)));
        let sizes: Vec<u32> = order.iter().map(|&i| items[i].size).collect();

        let incumbent = first_fit_decreasing(items, capacity)?;
        let lb = lower_bound_l2(items, capacity);
        if incumbent.bin_count() == lb {
            return Ok(incumbent);
        }

        let mut search = Search {
            sizes: &sizes,
            capacity,
            best_count: incumbent.bin_count(),
            best_assign: None,
            nodes: 0,
            node_limit: self.node_limit,
            lb,
        };
        let mut loads: Vec<u32> = Vec::new();
        let mut assign: Vec<usize> = vec![usize::MAX; sizes.len()];
        let exhausted = search.dfs(0, &mut loads, &mut assign);

        if exhausted && search.best_assign.is_none() {
            return Err(PackError::NodeLimit {
                limit: self.node_limit,
            });
        }

        match search.best_assign {
            None => Ok(incumbent),
            Some(best) => {
                let bin_count = *best.iter().max().expect("nonempty") + 1;
                let mut bins: Vec<Vec<Item<K>>> = vec![Vec::new(); bin_count];
                for (pos, &bin) in best.iter().enumerate() {
                    bins[bin].push(items[order[pos]].clone());
                }
                Ok(Packing::new(bins, capacity))
            }
        }
    }
}

struct Search<'a> {
    sizes: &'a [u32],
    capacity: u32,
    best_count: usize,
    best_assign: Option<Vec<usize>>,
    nodes: u64,
    node_limit: u64,
    lb: usize,
}

impl Search<'_> {
    /// Depth-first search; returns `true` if the node budget ran out.
    fn dfs(&mut self, pos: usize, loads: &mut Vec<u32>, assign: &mut Vec<usize>) -> bool {
        if self.best_count == self.lb {
            return false; // incumbent already optimal
        }
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return true;
        }
        if pos == self.sizes.len() {
            if loads.len() < self.best_count {
                self.best_count = loads.len();
                self.best_assign = Some(assign.clone());
            }
            return false;
        }
        // Remaining-size lower bound: even perfectly filling current slack
        // cannot beat the incumbent.
        let remaining: u32 = self.sizes[pos..].iter().sum();
        let slack: u32 = loads.iter().map(|&l| self.capacity - l).sum();
        let extra = remaining.saturating_sub(slack);
        let min_total =
            loads.len() + (u64::from(extra).div_ceil(u64::from(self.capacity))) as usize;
        if min_total >= self.best_count {
            return false;
        }

        let size = self.sizes[pos];
        // Try existing bins, skipping bins with identical load (symmetric).
        let mut seen_loads: Vec<u32> = Vec::new();
        for b in 0..loads.len() {
            let load = loads[b];
            if load + size > self.capacity || seen_loads.contains(&load) {
                continue;
            }
            seen_loads.push(load);
            loads[b] += size;
            assign[pos] = b;
            if self.dfs(pos + 1, loads, assign) {
                return true;
            }
            loads[b] -= size;
        }
        // Try a new bin (bounded by best_count - 1).
        if loads.len() + 1 < self.best_count {
            loads.push(size);
            assign[pos] = loads.len() - 1;
            if self.dfs(pos + 1, loads, assign) {
                return true;
            }
            loads.pop();
        }
        assign[pos] = usize::MAX;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::lower_bound;
    use proptest::prelude::*;

    #[test]
    fn empty_instance() {
        let p = BranchAndBound::new().pack::<u32>(&[], 10).unwrap();
        assert_eq!(p.bin_count(), 0);
    }

    #[test]
    fn finds_optimum_where_ffd_fails() {
        // Classic FFD-suboptimal instance with capacity 10:
        // sizes {5,5,4,4,3,3,3,3}: FFD packs [5,5],[4,4],[3,3,3],[3] = 4 bins,
        // optimum is [5,4][5,4][3,3,3]... wait 3+3+3=9, leftover 3 -> [5,4,...].
        // Use a known one: capacity 10, sizes {6,6,5,5,5,4,4,4,4,4,4,4,4,4,4,5}?
        // Keep it simple and just assert optimality vs. the lower bound on a
        // crafted perfect-fit instance where FFD wastes a bin.
        let items: Vec<Item<usize>> = [7u32, 6, 4, 4, 3, 3, 3]
            .iter()
            .copied()
            .enumerate()
            .map(|(k, s)| Item::new(k, s))
            .collect();
        // Total 30, capacity 10 -> LB 3; [7,3][6,4][4,3,3] achieves it.
        let p = BranchAndBound::new().pack(&items, 10).unwrap();
        assert_eq!(p.bin_count(), 3);
    }

    #[test]
    fn respects_node_limit() {
        // A hard-ish instance with a hopeless budget: the solver must fall
        // back to the FFD incumbent rather than erroring, because FFD is a
        // valid (if possibly suboptimal) solution.
        let items: Vec<Item<usize>> = (0..30)
            .map(|k| Item::new(k, 3 + (k as u32 * 7) % 5))
            .collect();
        let solver = BranchAndBound::with_node_limit(10);
        let p = solver.pack(&items, 11).unwrap();
        // Still a valid packing of all items.
        let packed: usize = p.bins().iter().map(|b| b.len()).sum();
        assert_eq!(packed, items.len());
    }

    #[test]
    fn single_item() {
        let p = BranchAndBound::new()
            .pack(&[Item::new("only", 10)], 10)
            .unwrap();
        assert_eq!(p.bin_count(), 1);
    }

    proptest! {
        #[test]
        fn exact_never_worse_than_heuristics_and_valid(
            raw in prop::collection::vec(1u32..=10, 0..14),
        ) {
            let items: Vec<Item<usize>> =
                raw.iter().enumerate().map(|(k, &s)| Item::new(k, s)).collect();
            let exact = BranchAndBound::new().pack(&items, 10).unwrap();
            let ffd = first_fit_decreasing(&items, 10).unwrap();
            prop_assert!(exact.bin_count() <= ffd.bin_count());
            prop_assert!(exact.bin_count() >= lower_bound(&items, 10));
            // Validity: every item exactly once, no bin over capacity.
            let mut keys: Vec<usize> = exact
                .bins()
                .iter()
                .flat_map(|b| b.iter().map(|i| i.key))
                .collect();
            keys.sort_unstable();
            prop_assert_eq!(keys, (0..items.len()).collect::<Vec<_>>());
            for bin in exact.bins() {
                prop_assert!(bin.iter().map(|i| i.size).sum::<u32>() <= 10);
            }
        }

        #[test]
        fn exact_matches_brute_force_on_tiny_instances(
            raw in prop::collection::vec(1u32..=6, 1..7),
        ) {
            let items: Vec<Item<usize>> =
                raw.iter().enumerate().map(|(k, &s)| Item::new(k, s)).collect();
            let exact = BranchAndBound::new().pack(&items, 6).unwrap();
            prop_assert_eq!(exact.bin_count(), brute_force(&raw, 6));
        }
    }

    /// Minimal brute force: try all assignments of items to at most n bins.
    fn brute_force(sizes: &[u32], capacity: u32) -> usize {
        fn rec(sizes: &[u32], pos: usize, loads: &mut Vec<u32>, capacity: u32, best: &mut usize) {
            if loads.len() >= *best {
                return;
            }
            if pos == sizes.len() {
                *best = loads.len();
                return;
            }
            for b in 0..loads.len() {
                if loads[b] + sizes[pos] <= capacity {
                    loads[b] += sizes[pos];
                    rec(sizes, pos + 1, loads, capacity, best);
                    loads[b] -= sizes[pos];
                }
            }
            loads.push(sizes[pos]);
            rec(sizes, pos + 1, loads, capacity, best);
            loads.pop();
        }
        let mut best = sizes.len();
        rec(sizes, 0, &mut Vec::new(), capacity, &mut best);
        best.max(1)
    }
}
