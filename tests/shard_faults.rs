//! Shard fault-isolation property suite: the sharded archive under
//! targeted corruption.
//!
//! The property: a fault in one dataset × region shard — a crash fault
//! killing its WAL mid-round, or a flipped bit in an acked frame — is
//! *contained*. Every other shard keeps committing and serving, queries
//! degrade (flagged, never 500), the damaged shard quarantines on
//! restart, and `fsck --repair` re-admits it at its committed prefix.
//! Same-seed damage recovers byte-identically.

mod common;

use common::SEED;
use spotlake::SpotLake;
use spotlake_cloud_sim::SimCloud;
use spotlake_collector::{CollectorConfig, CollectorService, IoFaultPlan};
use spotlake_timestream::{fsck_shards, repair_shards, shard_dir, ShardKey, ShardState};
use std::path::{Path, PathBuf};

/// More than enough rounds for the crash profile (~3% per append) to
/// fire inside the targeted shard.
const MAX_ROUNDS: u64 = 400;

/// The shard every test damages: SPS in the first test region.
fn target() -> ShardKey {
    ShardKey::new("sps", "us-test-1")
}

fn config(dir: &Path, io_faults: Option<IoFaultPlan>) -> CollectorConfig {
    CollectorConfig {
        wal_dir: Some(dir.to_owned()),
        shards: true,
        checkpoint_every: 3,
        io_faults,
        io_fault_shard: io_faults.map(|_| target()),
        ..CollectorConfig::default()
    }
}

fn lake(dir: &Path, io_faults: Option<IoFaultPlan>) -> SpotLake {
    SpotLake::builder()
        .catalog(common::test_catalog(common::SMALL_MENU))
        .sim_config(common::sim_config())
        .collector_config(config(dir, io_faults))
        .build()
        .expect("sharded pipeline builds")
}

fn tempdir(name: &str) -> PathBuf {
    common::scratch_path("shard", name)
}

/// Every file under `root`, as (relative path, bytes), sorted.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).expect("readable dir") {
            let path = entry.expect("readable entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("readable file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Flips one bit in the last byte of the target shard's WAL — corrupting
/// an *acked* frame, which recovery must refuse to paper over.
fn flip_acked_tail(dir: &Path) {
    let wal = shard_dir(dir, &target()).join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("target shard has a wal");
    assert!(!bytes.is_empty(), "target wal is non-empty");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&wal, bytes).expect("rewrite wal");
}

/// Drives rounds under the targeted crash profile until the target
/// shard's WAL dies. Rounds keep *succeeding* throughout — a shard
/// fault degrades the round, it never fails it.
fn run_until_shard_dies(lake: &mut SpotLake) -> u64 {
    for round in 0..MAX_ROUNDS {
        lake.run_rounds(1).expect("shard faults never fail a round");
        let health = lake.collector().shard_health().expect("sharded mode");
        if health.degraded() {
            return round;
        }
    }
    panic!("targeted crash profile never fired in {MAX_ROUNDS} rounds");
}

#[test]
fn crash_fault_in_one_shard_degrades_instead_of_failing() {
    let dir = tempdir("isolate");
    let mut lake = lake(&dir, Some(IoFaultPlan::crash(SEED)));
    run_until_shard_dies(&mut lake);

    // Exactly the targeted shard is impaired; every other shard serves.
    let health = lake.collector().shard_health().expect("sharded mode");
    let impaired: Vec<String> = health
        .impaired()
        .map(|r| format!("{}/{}", r.dataset, r.region))
        .collect();
    assert_eq!(impaired, vec!["sps/us-test-1".to_owned()]);
    assert_eq!(health.healthy(), health.total() - 1);
    assert!(!health.all_lost());

    // /health answers 200-degraded, naming the impaired shard.
    let resp = lake.http_get("/health").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert!(
        resp.body_text().contains("degraded"),
        "{}",
        resp.body_text()
    );
    assert!(resp.body_text().contains("sps/us-test-1"));

    // Queries touching the impaired shard degrade — flagged, never 500.
    let hit = lake.http_get("/query?table=sps&region=us-test-1").unwrap();
    assert_eq!(hit.status, 200);
    assert!(hit.body_text().contains("\"degraded\":true"));
    assert!(hit.body_text().contains("sps/us-test-1"));

    // Queries scoped to healthy shards carry no degraded flag.
    let miss = lake.http_get("/query?table=sps&region=eu-test-1").unwrap();
    assert_eq!(miss.status, 200);
    assert!(!miss.body_text().contains("degraded"));
    assert!(miss.body_text().contains("rows"));

    // The healthy region kept collecting after the target died.
    let sick = lake.http_get("/latest?table=sps&region=us-test-1").unwrap();
    let well = lake.http_get("/latest?table=sps&region=eu-test-1").unwrap();
    assert_eq!(sick.status, 200);
    assert_eq!(well.status, 200);
    assert!(well.body_text().contains("eu-test-1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_fsck_repair_readmit_roundtrip() {
    let dir = tempdir("roundtrip");

    // A clean sharded run, remembering the target shard's health row and
    // every *other* shard's on-disk bytes.
    let mut first = lake(&dir, None);
    first.run_rounds(8).unwrap();
    let pristine_points = first.archive().point_count();
    let health = first.collector().shard_health().expect("sharded mode");
    assert_eq!(health.healthy(), health.total());
    let target_points = health
        .shards
        .iter()
        .find(|r| r.dataset == "sps" && r.region == "us-test-1")
        .expect("target shard exists")
        .points;
    assert!(target_points > 0);
    drop(first);
    let target_rel = shard_dir(&dir, &target())
        .strip_prefix(&dir)
        .unwrap()
        .to_string_lossy()
        .into_owned();
    let others_before: Vec<(String, Vec<u8>)> = snapshot(&dir)
        .into_iter()
        .filter(|(rel, _)| !rel.starts_with(&target_rel))
        .collect();

    // Bit-flip an acked frame in the target shard: restart quarantines
    // it, the merged archive drops exactly its points, nothing else.
    flip_acked_tail(&dir);
    let second = lake(&dir, None);
    let health = second.collector().shard_health().expect("sharded mode");
    let quarantined: Vec<_> = health.quarantined().collect();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].state, ShardState::Quarantined);
    assert_eq!(quarantined[0].dataset, "sps");
    assert_eq!(quarantined[0].region, "us-test-1");
    assert!(
        quarantined[0].detail.contains("committed rounds lost"),
        "{}",
        quarantined[0].detail
    );
    assert_eq!(
        second.archive().point_count(),
        pristine_points - target_points,
        "exactly the quarantined shard's points are withheld"
    );

    // Quarantine shows on the ops surface: 200-degraded /health, a
    // flagged /quality, a flagged (not failed) query.
    let resp = second.http_get("/health").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_text().contains("degraded"));
    let quality = second.http_get("/quality").unwrap();
    assert!(quality.body_text().contains("quarantined_shards"));
    assert!(quality.body_text().contains("sps/us-test-1"));
    let query = second
        .http_get("/query?table=sps&region=us-test-1")
        .unwrap();
    assert_eq!(query.status, 200);
    assert!(query.body_text().contains("\"degraded\":true"));

    // Recovery left every healthy shard's bytes exactly alone.
    let others_after: Vec<(String, Vec<u8>)> = snapshot(&dir)
        .into_iter()
        .filter(|(rel, _)| !rel.starts_with(&target_rel) && !rel.ends_with("shards.map"))
        .collect();
    let before: Vec<(String, Vec<u8>)> = others_before
        .into_iter()
        .filter(|(rel, _)| !rel.ends_with("shards.map"))
        .collect();
    assert_eq!(before, others_after, "healthy shards untouched by recovery");
    drop(second);

    // fsck sees the corruption (exit 2); --repair truncates to the
    // committed prefix and clears quarantine (exit 0 afterwards).
    let report = fsck_shards(&dir).unwrap();
    assert_eq!(report.exit_code(), 2, "{}", report.render());
    assert!(report.render().contains("sps"));
    let repaired = repair_shards(&dir).unwrap();
    assert_eq!(repaired.exit_code(), 0, "{}", repaired.render());
    assert!(!repaired.actions.is_empty());

    // Re-admitted: the next open serves every shard and keeps collecting.
    let mut third = lake(&dir, None);
    let health = third.collector().shard_health().expect("sharded mode");
    assert_eq!(health.healthy(), health.total(), "repair re-admits");
    third.run_rounds(1).unwrap();
    let resp = third.http_get("/health").unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.body_text().contains("degraded"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_seed_shard_recovery_is_byte_identical() {
    let dir_a = tempdir("replay-a");
    let dir_b = tempdir("replay-b");

    // The same seeded crash scenario in two directories...
    for dir in [&dir_a, &dir_b] {
        let mut cloud = SimCloud::new(
            common::test_catalog(common::SMALL_MENU),
            common::sim_config(),
        );
        let mut service =
            CollectorService::new(cloud.catalog(), config(dir, Some(IoFaultPlan::crash(SEED))))
                .expect("sharded service builds");
        for _ in 0..MAX_ROUNDS {
            cloud.step();
            service
                .collect_once(&cloud)
                .expect("rounds degrade, never fail");
            if service.shard_health().expect("sharded mode").degraded() {
                break;
            }
        }
        assert!(service.shard_health().unwrap().degraded());
        drop(service);
        // ...restarted cold, with the per-shard states saved for audit.
        let catalog = common::test_catalog(common::SMALL_MENU);
        let restarted =
            CollectorService::new(&catalog, config(dir, None)).expect("restart recovers");
        restarted
            .sharded_archive()
            .expect("sharded mode")
            .save_shard_states()
            .unwrap();
    }

    // ...recovers to byte-identical trees: same files, same bytes.
    let a = snapshot(&dir_a);
    let b = snapshot(&dir_b);
    let names_a: Vec<&String> = a.iter().map(|(rel, _)| rel).collect();
    let names_b: Vec<&String> = b.iter().map(|(rel, _)| rel).collect();
    assert_eq!(names_a, names_b, "same file set");
    for ((rel, bytes_a), (_, bytes_b)) in a.iter().zip(b.iter()) {
        assert_eq!(bytes_a, bytes_b, "{rel} differs between same-seed runs");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
