//! Archive persistence and the advisor scrape path, end to end.

use spotlake::{SimConfig, SpotLake};
use spotlake_cloud_api::AdvisorPage;
use spotlake_timestream::{Database, Query};
use spotlake_types::{CatalogBuilder, SimDuration};

fn lake() -> SpotLake {
    let mut b = CatalogBuilder::new();
    b.region("us-test-1", 2)
        .region("eu-test-1", 2)
        .instance_type("m5.large", 0.096)
        .instance_type("inf1.xlarge", 0.228);
    let mut sim = SimConfig::with_seed(23);
    sim.tick = SimDuration::from_hours(1);
    SpotLake::builder()
        .catalog(b.build().expect("valid catalog"))
        .sim_config(sim)
        .build()
        .expect("pipeline builds")
}

#[test]
fn archive_survives_disk_roundtrip() {
    let mut lake = lake();
    lake.run_rounds(30).expect("collection runs");

    let mut path = std::env::temp_dir();
    path.push(format!("spotlake-it-archive-{}.db", std::process::id()));
    lake.save_archive(&path).expect("archive saves");
    let loaded = Database::load(&path).expect("archive loads");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.point_count(), lake.archive().point_count());
    assert_eq!(loaded.table_names(), lake.archive().table_names());

    // Same query against both gives identical rows.
    let q = Query::measure("sps").filter("instance_type", "inf1.xlarge");
    let live = lake.archive().query("sps", &q).expect("sps table exists");
    let persisted = loaded.query("sps", &q).expect("sps table exists");
    assert_eq!(live, persisted);
    assert!(!live.is_empty());
}

#[test]
fn advisor_scrape_agrees_with_archive() {
    let mut lake = lake();
    lake.run_rounds(10).expect("collection runs");

    // What the scraper reads off the web page right now...
    let page = AdvisorPage::render(lake.cloud());
    let rows = AdvisorPage::scrape(&page).expect("page scrapes");
    assert_eq!(rows.len(), 4, "2 types x 2 regions");

    // ...matches the latest if_score in the archive.
    for row in rows {
        let latest = lake
            .archive()
            .latest(
                "advisor",
                &Query::measure("if_score")
                    .filter("instance_type", &row.instance_type)
                    .filter("region", &row.region),
            )
            .expect("advisor table exists");
        assert_eq!(latest.len(), 1);
        assert_eq!(
            latest[0].value,
            row.bucket.interruption_free_score().as_f64(),
            "archive and page disagree for {}/{}",
            row.instance_type,
            row.region
        );
    }
}
