//! Smoke-scale checks that the paper's qualitative shapes hold end to end.
//!
//! The bench binaries assert the quantitative versions at full scale; these
//! run in seconds and protect the shapes against regressions.

use spotlake::experiment::{ExperimentConfig, FulfillmentExperiment, Stratum};
use spotlake::{RequestOutcome, SimCloud, SimConfig};
use spotlake_collector::{AccountPool, PlannerStrategy, QueryPlanner};
use spotlake_types::{Catalog, SimDuration};

/// Figure 1's shape: the packed plan beats the naive per-(type, region)
/// scan by a large factor and fits in tens of accounts.
#[test]
fn figure1_shape_packing_wins() {
    let catalog = Catalog::aws_2022();
    let (exact_plan, stats) =
        QueryPlanner::new(PlannerStrategy::Exact).plan_with_stats(&catalog, None);
    let all_pairs = catalog.instance_types().len() * catalog.regions().len();
    assert_eq!(all_pairs, 9_299);
    let improvement = all_pairs as f64 / stats.planned_queries as f64;
    assert!(
        improvement > 3.5,
        "packing should beat all-pairs by ~4.5x (got {improvement:.2}x)"
    );
    let accounts = AccountPool::required_accounts(exact_plan.len());
    assert!(
        (30..=60).contains(&accounts),
        "the plan should need ~45 accounts, got {accounts}"
    );
}

/// Section 5.4's headline orderings, on a reduced experiment.
#[test]
fn table3_shape_orderings() {
    let mut config = SimConfig::with_seed(5);
    config.tick = SimDuration::from_hours(1);
    config.shock_day = None;
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);
    cloud.run_days(8);
    let (report, _) = FulfillmentExperiment::new(ExperimentConfig {
        cases_per_stratum: 25,
        history: SimDuration::from_days(7),
        record_every: SimDuration::from_hours(6),
        ..ExperimentConfig::default()
    })
    .run(&mut cloud);
    assert!(
        report.cases.len() >= 50,
        "experiment produced too few cases"
    );

    let row = |s: Stratum| {
        report
            .table3()
            .into_iter()
            .find(|r| r.stratum == s)
            .expect("all strata reported")
    };
    // High placement score -> always fulfilled.
    assert_eq!(row(Stratum::HH).not_fulfilled_pct, 0.0);
    assert_eq!(row(Stratum::HL).not_fulfilled_pct, 0.0);
    // Low placement score -> fulfillment failure is common.
    assert!(row(Stratum::LH).not_fulfilled_pct > 20.0);
    assert!(row(Stratum::LL).not_fulfilled_pct > 20.0);
    // The advisor carries real interruption signal: H-L interrupts more
    // than H-H.
    assert!(
        row(Stratum::HL).interrupted_pct > row(Stratum::HH).interrupted_pct,
        "H-L ({:.1}%) must interrupt more than H-H ({:.1}%)",
        row(Stratum::HL).interrupted_pct,
        row(Stratum::HH).interrupted_pct
    );

    // Figure 11a's shape: fulfilled H-H requests place fast.
    let hh = report.fulfillment_latencies(Stratum::HH);
    assert!(!hh.is_empty());
    let fast = hh.iter().filter(|&&l| l <= 135.0).count() as f64 / hh.len() as f64;
    assert!(
        fast > 0.7,
        "H-H should mostly fulfill within 135s ({fast:.2})"
    );

    // Outcome labels partition the cases.
    for case in &report.cases {
        match case.outcome {
            RequestOutcome::NoFulfill => assert!(case.fulfillment_latency_secs.is_none()),
            _ => assert!(case.fulfillment_latency_secs.is_some()),
        }
    }
}

/// Section 5.2's shape: composite multi-type queries floor at the sum of
/// the individual scores and never exceed 10.
#[test]
fn figure6_shape_composite_floor() {
    let mut cloud = SimCloud::new(Catalog::aws_2022(), SimConfig::with_seed(3));
    cloud.run_days(1);
    let catalog = cloud.catalog().clone();
    let types: Vec<_> = ["m5.large", "c5.large", "r5.large"]
        .iter()
        .map(|n| catalog.instance_type_id(n).expect("cataloged"))
        .collect();
    let mut checked = 0;
    let mut sub_additive = 0;
    for az in catalog.az_ids() {
        let Some(composite) = cloud.composite_score(&types, az, 1) else {
            continue;
        };
        let sum: u32 = types
            .iter()
            .filter_map(|&t| cloud.placement_score(t, az, 1))
            .map(|s| u32::from(s.value()))
            .sum();
        assert!(composite.value() <= 10);
        if u32::from(composite.value()) < sum {
            sub_additive += 1;
        }
        checked += 1;
    }
    assert!(
        checked > 30,
        "expected most AZs to support the general types"
    );
    assert!(
        sub_additive * 20 <= checked,
        "sub-additive composites must be rare exceptions ({sub_additive}/{checked})"
    );
}
