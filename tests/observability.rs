//! Observability suite: the workspace-wide metric registry, trace journal,
//! and the `/metrics` + `/health` + `/stats` surfaces, driven through the
//! full `SpotLake` assembly.
//!
//! The headline contract: two same-seed runs under the same fault plan
//! render **byte-identical** `/metrics` documents and trace journals —
//! no wall clock or other ambient nondeterminism leaks into telemetry.

use spotlake::{CollectorConfig, SimConfig, SpotLake};
use spotlake_collector::{Dataset, FaultPlan};
use spotlake_types::{CatalogBuilder, SimDuration};

const SEED: u64 = 20_220_901;

fn lake(faults: Option<FaultPlan>) -> SpotLake {
    let mut b = CatalogBuilder::new();
    b.region("us-test-1", 3)
        .region("eu-test-1", 3)
        .instance_type("m5.large", 0.096)
        .instance_type("c5.xlarge", 0.17)
        .instance_type("p3.2xlarge", 3.06);
    let mut sim = SimConfig::with_seed(SEED);
    sim.tick = SimDuration::from_mins(30);
    SpotLake::builder()
        .catalog(b.build().expect("valid catalog"))
        .sim_config(sim)
        .collector_config(CollectorConfig {
            faults,
            ..CollectorConfig::default()
        })
        .build()
        .expect("pipeline builds")
}

fn body(lake: &SpotLake, path: &str) -> String {
    let response = lake.http_get(path).expect("request parses");
    assert_eq!(response.status, 200, "GET {path}");
    response.body_text()
}

#[test]
fn metrics_covers_every_layer_without_duplicate_families() {
    let mut lake = lake(Some(FaultPlan::uniform(SEED, 0.15)));
    lake.run_rounds(12).expect("faulty rounds complete");
    // Traffic before the scrape so the gateway's and the store's
    // read-path families exist.
    let _ = body(&lake, "/health");
    let _ = body(&lake, "/query?table=sps&instance_type=m5.large");
    let metrics = body(&lake, "/metrics");

    for family in [
        "spotlake_collector_rounds_total",
        "spotlake_collector_records_total",
        "spotlake_collector_breaker_state",
        "spotlake_store_write_batches_total",
        "spotlake_store_query_rows",
        "spotlake_api_faults_injected_total",
        "spotlake_http_requests_total",
        "spotlake_http_response_bytes",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} ")),
            "missing family {family} in:\n{metrics}"
        );
    }

    // Exactly one HELP and one TYPE line per family after the merge.
    let mut seen = std::collections::BTreeMap::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap_or_default().to_owned();
            *seen.entry(family).or_insert(0u32) += 1;
        }
    }
    assert!(!seen.is_empty(), "scrape must not be empty");
    for (family, count) in seen {
        assert_eq!(count, 1, "duplicate HELP for {family}");
    }
}

#[test]
fn same_seed_runs_scrape_byte_identical_metrics_and_traces() {
    let plan = FaultPlan::uniform(SEED, 0.20);
    let mut a = lake(Some(plan));
    let mut b = lake(Some(plan));
    for lake in [&mut a, &mut b] {
        lake.run_rounds(20).expect("run completes");
    }
    // Identical request sequences so the gateway registries match too.
    for path in [
        "/health",
        "/stats",
        "/query?table=sps&instance_type=m5.large",
    ] {
        let ra = body(&a, path);
        let rb = body(&b, path);
        assert_eq!(ra, rb, "response replay for {path}");
    }
    assert_eq!(
        body(&a, "/metrics"),
        body(&b, "/metrics"),
        "/metrics replays byte-for-byte"
    );
    let trace_a = a.trace_text();
    let trace_b = b.trace_text();
    assert!(!trace_a.is_empty(), "journal captured the rounds");
    assert_eq!(trace_a, trace_b, "trace journals replay byte-for-byte");
    assert_eq!(a.metrics_text(), b.metrics_text(), "CLI render replays too");
}

#[test]
fn health_reports_open_breaker_as_degraded_over_http() {
    let mut lake = lake(None);
    lake.run_rounds(1).expect("warm-up round");
    let healthy = body(&lake, "/health");
    assert!(healthy.contains("\"status\":\"ok\""), "{healthy}");

    let tick = lake.cloud().ticks();
    lake.collector_mut()
        .force_breaker_open(Dataset::Advisor, tick);
    lake.run_rounds(1).expect("round with open breaker");

    // Degraded still answers 200 — the archive serves what it has.
    let degraded = body(&lake, "/health");
    assert!(degraded.contains("\"status\":\"degraded\""), "{degraded}");
    assert!(degraded.contains("collector/advisor"), "{degraded}");
    assert!(degraded.contains("breaker open"), "{degraded}");
    // The other datasets stay individually ready.
    assert!(
        degraded.contains("\"name\":\"collector/sps\""),
        "{degraded}"
    );
}

#[test]
fn stats_exposes_collection_totals_and_last_round_over_http() {
    let mut lake = lake(Some(FaultPlan::uniform(SEED, 0.10)));
    lake.run_rounds(8).expect("rounds complete");
    let stats = body(&lake, "/stats");
    assert!(stats.contains("\"collection\""), "{stats}");
    assert!(stats.contains("\"rounds\":8"), "{stats}");
    assert!(stats.contains("\"last_round\""), "{stats}");
    assert!(stats.contains("\"tick\":8"), "{stats}");
    // The pre-existing store shape survives.
    assert!(stats.contains("total_points"), "{stats}");
    // The new sections ride along: histogram quantiles and the
    // slow-query listing (empty before any row query, populated after).
    assert!(stats.contains("\"quantiles\""), "{stats}");
    assert!(stats.contains("\"slow_queries\":[]"), "{stats}");
    let _ = body(&lake, "/query?table=sps&instance_type=m5.large");
    let stats = body(&lake, "/stats");
    assert!(stats.contains("\"spotlake_query_cost\""), "{stats}");
    assert!(stats.contains("\"p99\""), "{stats}");
    assert!(
        stats.contains("\"query\":\"/query?table=sps&instance_type=m5.large\""),
        "{stats}"
    );
}

#[test]
fn explain_and_debug_surfaces_replay_byte_identical() {
    let plan = FaultPlan::uniform(SEED, 0.20);
    let run = || {
        let mut lake = lake(Some(plan));
        lake.run_rounds(16).expect("run completes");
        // A fixed request mix: broad scan, pruned scan, latest, window.
        for path in [
            "/query?table=sps",
            "/query?table=sps&instance_type=m5.large&az=us-test-1a",
            "/latest?table=price",
            "/window?table=sps&window=3600&agg=mean",
        ] {
            let _ = body(&lake, path);
        }
        (
            body(&lake, "/query?table=sps&instance_type=m5.large&explain=1"),
            body(&lake, "/debug/queries"),
            body(&lake, "/quality"),
            lake.query_trace_text(),
        )
    };
    let (ea, da, qa, ta) = run();
    let (eb, db, qb, tb) = run();
    assert!(!ea.is_empty() && ea.contains("\"explain\""), "{ea}");
    assert_eq!(ea, eb, "EXPLAIN replays byte-for-byte");
    assert_eq!(da, db, "/debug/queries replays byte-for-byte");
    assert_eq!(qa, qb, "/quality replays byte-for-byte");
    assert!(!ta.is_empty(), "query journal captured the requests");
    assert_eq!(ta, tb, "query trace journals replay byte-for-byte");
    // The flight recorder saw all five row queries (EXPLAIN included).
    assert!(da.contains("\"observed\":5"), "{da}");
}

#[test]
fn explain_costs_reconcile_with_query_histograms() {
    let mut lake = lake(None);
    lake.run_rounds(10).expect("rounds complete");
    let explain = body(&lake, "/query?table=sps&instance_type=m5.large&explain=1");
    let pick = |key: &str| -> f64 {
        explain
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| s.split(['}', ',']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in {explain}"))
    };
    let cost = pick("cost");
    let rows_decoded = pick("rows_decoded");
    assert!(cost > 0.0);
    let metrics = body(&lake, "/metrics");
    let sum_of = |family: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{family}_sum{{op=\"query\",table=\"sps\"}}")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {family} sum in metrics"))
    };
    assert_eq!(
        sum_of("spotlake_query_cost"),
        cost,
        "single query: histogram sum equals EXPLAIN cost"
    );
    assert_eq!(sum_of("spotlake_query_rows_decoded"), rows_decoded);
}

#[test]
fn quality_reports_coverage_and_flags_faulted_gaps() {
    // Clean run: full coverage, nothing stale.
    let mut clean = lake(None);
    clean.run_rounds(12).expect("clean run");
    let q = body(&clean, "/quality");
    assert!(q.contains("\"dataset\":\"sps\""), "{q}");
    // 3 types × 6 AZs.
    assert!(q.contains("\"keys_tracked\":18"), "{q}");
    assert!(q.contains("\"min_coverage\":1"), "{q}");
    let metrics = body(&clean, "/metrics");
    assert!(
        metrics.contains("spotlake_archive_keys_tracked{dataset=\"sps\"} 18"),
        "{metrics}"
    );

    // Skipped rounds (breaker forced open) must show as staleness and a
    // coverage gap for exactly the skipped dataset.
    let mut faulty = lake(None);
    faulty.run_rounds(6).expect("warm-up");
    let tick = faulty.cloud().ticks();
    faulty
        .collector_mut()
        .force_breaker_open(Dataset::Advisor, tick);
    faulty.run_rounds(3).expect("rounds with open breaker");
    let q = body(&faulty, "/quality");
    // Keys render sorted, so the per-dataset aggregates are contiguous:
    // all 6 advisor keys (3 types × 2 regions) went stale for the 3
    // skipped rounds, while sps kept full coverage.
    assert!(
        q.contains("\"dataset\":\"advisor\",\"gaps_total\":0,\"keys_stale\":6,\"keys_tracked\":6,\"max_staleness_ticks\":3"),
        "{q}"
    );
    assert!(
        q.contains("\"dataset\":\"sps\",\"gaps_total\":0,\"keys_stale\":0"),
        "{q}"
    );
    let metrics = body(&faulty, "/metrics");
    let stale_line = metrics
        .lines()
        .find(|l| l.starts_with("spotlake_archive_keys_stale{dataset=\"advisor\"}"))
        .expect("staleness gauge exported");
    assert!(!stale_line.ends_with(" 0"), "{stale_line}");

    // Once the breaker cools down and the advisor recovers, the outage is
    // no longer staleness but a recorded *gap* with missed rounds.
    faulty.run_rounds(12).expect("recovery rounds");
    let q = body(&faulty, "/quality");
    assert!(
        q.contains("\"dataset\":\"advisor\",\"gaps_total\":6,\"keys_stale\":0"),
        "one gap per advisor key after recovery: {q}"
    );
    let missed: u64 = q
        .split("\"missed_rounds_total\":")
        .nth(1)
        .and_then(|s| s.split(['}', ',']).next())
        .and_then(|s| s.parse().ok())
        .expect("missed_rounds_total present");
    assert!(missed > 0, "{q}");
}

#[test]
fn http_content_types_are_correct_over_the_full_stack() {
    let mut lake = lake(None);
    lake.run_rounds(2).expect("rounds complete");
    let ct = |path: &str| {
        let r = lake.http_get(path).expect("request parses");
        assert_eq!(r.status, 200, "GET {path}");
        r.content_type
    };
    assert_eq!(ct("/metrics"), "text/plain; version=0.0.4");
    assert_eq!(ct("/debug/traces"), "text/plain");
    assert_eq!(ct("/debug/queries"), "application/json");
    assert_eq!(ct("/quality"), "application/json");
    assert_eq!(ct("/stats"), "application/json");
    assert_eq!(ct("/query?table=sps"), "application/json");
    assert_eq!(ct("/query?table=sps&format=csv"), "text/csv");
    assert_eq!(ct("/"), "text/html");
}
