//! Observability suite: the workspace-wide metric registry, trace journal,
//! and the `/metrics` + `/health` + `/stats` surfaces, driven through the
//! full `SpotLake` assembly.
//!
//! The headline contract: two same-seed runs under the same fault plan
//! render **byte-identical** `/metrics` documents and trace journals —
//! no wall clock or other ambient nondeterminism leaks into telemetry.

use spotlake::{CollectorConfig, SimConfig, SpotLake};
use spotlake_collector::{Dataset, FaultPlan};
use spotlake_types::{CatalogBuilder, SimDuration};

const SEED: u64 = 20_220_901;

fn lake(faults: Option<FaultPlan>) -> SpotLake {
    let mut b = CatalogBuilder::new();
    b.region("us-test-1", 3)
        .region("eu-test-1", 3)
        .instance_type("m5.large", 0.096)
        .instance_type("c5.xlarge", 0.17)
        .instance_type("p3.2xlarge", 3.06);
    let mut sim = SimConfig::with_seed(SEED);
    sim.tick = SimDuration::from_mins(30);
    SpotLake::builder()
        .catalog(b.build().expect("valid catalog"))
        .sim_config(sim)
        .collector_config(CollectorConfig {
            faults,
            ..CollectorConfig::default()
        })
        .build()
        .expect("pipeline builds")
}

fn body(lake: &SpotLake, path: &str) -> String {
    let response = lake.http_get(path).expect("request parses");
    assert_eq!(response.status, 200, "GET {path}");
    response.body_text()
}

#[test]
fn metrics_covers_every_layer_without_duplicate_families() {
    let mut lake = lake(Some(FaultPlan::uniform(SEED, 0.15)));
    lake.run_rounds(12).expect("faulty rounds complete");
    // Traffic before the scrape so the gateway's and the store's
    // read-path families exist.
    let _ = body(&lake, "/health");
    let _ = body(&lake, "/query?table=sps&instance_type=m5.large");
    let metrics = body(&lake, "/metrics");

    for family in [
        "spotlake_collector_rounds_total",
        "spotlake_collector_records_total",
        "spotlake_collector_breaker_state",
        "spotlake_store_write_batches_total",
        "spotlake_store_query_rows",
        "spotlake_api_faults_injected_total",
        "spotlake_http_requests_total",
        "spotlake_http_response_bytes",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} ")),
            "missing family {family} in:\n{metrics}"
        );
    }

    // Exactly one HELP and one TYPE line per family after the merge.
    let mut seen = std::collections::BTreeMap::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap_or_default().to_owned();
            *seen.entry(family).or_insert(0u32) += 1;
        }
    }
    assert!(!seen.is_empty(), "scrape must not be empty");
    for (family, count) in seen {
        assert_eq!(count, 1, "duplicate HELP for {family}");
    }
}

#[test]
fn same_seed_runs_scrape_byte_identical_metrics_and_traces() {
    let plan = FaultPlan::uniform(SEED, 0.20);
    let mut a = lake(Some(plan));
    let mut b = lake(Some(plan));
    for lake in [&mut a, &mut b] {
        lake.run_rounds(20).expect("run completes");
    }
    // Identical request sequences so the gateway registries match too.
    for path in [
        "/health",
        "/stats",
        "/query?table=sps&instance_type=m5.large",
    ] {
        let ra = body(&a, path);
        let rb = body(&b, path);
        assert_eq!(ra, rb, "response replay for {path}");
    }
    assert_eq!(
        body(&a, "/metrics"),
        body(&b, "/metrics"),
        "/metrics replays byte-for-byte"
    );
    let trace_a = a.trace_text();
    let trace_b = b.trace_text();
    assert!(!trace_a.is_empty(), "journal captured the rounds");
    assert_eq!(trace_a, trace_b, "trace journals replay byte-for-byte");
    assert_eq!(a.metrics_text(), b.metrics_text(), "CLI render replays too");
}

#[test]
fn health_reports_open_breaker_as_degraded_over_http() {
    let mut lake = lake(None);
    lake.run_rounds(1).expect("warm-up round");
    let healthy = body(&lake, "/health");
    assert!(healthy.contains("\"status\":\"ok\""), "{healthy}");

    let tick = lake.cloud().ticks();
    lake.collector_mut()
        .force_breaker_open(Dataset::Advisor, tick);
    lake.run_rounds(1).expect("round with open breaker");

    // Degraded still answers 200 — the archive serves what it has.
    let degraded = body(&lake, "/health");
    assert!(degraded.contains("\"status\":\"degraded\""), "{degraded}");
    assert!(degraded.contains("collector/advisor"), "{degraded}");
    assert!(degraded.contains("breaker open"), "{degraded}");
    // The other datasets stay individually ready.
    assert!(
        degraded.contains("\"name\":\"collector/sps\""),
        "{degraded}"
    );
}

#[test]
fn stats_exposes_collection_totals_and_last_round_over_http() {
    let mut lake = lake(Some(FaultPlan::uniform(SEED, 0.10)));
    lake.run_rounds(8).expect("rounds complete");
    let stats = body(&lake, "/stats");
    assert!(stats.contains("\"collection\""), "{stats}");
    assert!(stats.contains("\"rounds\":8"), "{stats}");
    assert!(stats.contains("\"last_round\""), "{stats}");
    assert!(stats.contains("\"tick\":8"), "{stats}");
    // The pre-existing store shape survives.
    assert!(stats.contains("total_points"), "{stats}");
}
