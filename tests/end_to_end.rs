//! Cross-crate integration: the full SpotLake pipeline on a small catalog.

use spotlake::{SimConfig, SpotLake};
use spotlake_types::{CatalogBuilder, SimDuration};

fn small_lake() -> SpotLake {
    let mut b = CatalogBuilder::new();
    b.region("us-test-1", 3)
        .region("eu-test-1", 3)
        .region("ap-test-1", 2)
        .instance_type("m5.large", 0.096)
        .instance_type("c5.xlarge", 0.17)
        .instance_type("p3.2xlarge", 3.06)
        .instance_type("g4dn.xlarge", 0.526);
    let mut sim = SimConfig::with_seed(11);
    sim.tick = SimDuration::from_mins(30);
    SpotLake::builder()
        .catalog(b.build().expect("valid catalog"))
        .sim_config(sim)
        .build()
        .expect("pipeline builds")
}

#[test]
fn collect_serve_and_export() {
    let mut lake = small_lake();
    let stats = lake.run_rounds(48).expect("collection runs");
    assert!(stats.sps_records > 0);
    assert!(stats.advisor_records > 0);
    assert!(stats.price_records > 0);

    // JSON query across the gateway.
    let r = lake
        .http_get("/query?table=sps&instance_type=m5.large&region=us-test-1")
        .expect("parseable request");
    assert_eq!(r.status, 200);
    assert!(r.body_text().contains("us-test-1"));

    // Windowed aggregation.
    let r = lake
        .http_get("/window?table=sps&instance_type=p3.2xlarge&window=3600&agg=mean")
        .expect("parseable request");
    assert_eq!(r.status, 200);
    assert!(r.body_text().contains("windows"));

    // CSV export carries a header plus rows.
    let r = lake
        .http_get("/query?table=advisor&format=csv")
        .expect("parseable request");
    assert_eq!(r.content_type, "text/csv");
    let body = r.body_text();
    assert!(body.starts_with("time,value"));
    assert!(body.lines().count() > 1);

    // Unknown table is a 404, not a crash.
    assert_eq!(lake.http_get("/query?table=bogus").unwrap().status, 404);
}

#[test]
fn spot_requests_flow_through_the_simulated_cloud() {
    let mut lake = small_lake();
    lake.run_rounds(4).expect("collection runs");
    let catalog = lake.cloud().catalog().clone();
    let ty = catalog.instance_type_id("m5.large").expect("cataloged");
    let az = catalog.az_id("us-test-1a").expect("cataloged");
    let od = catalog.od_price(ty);

    let id = lake
        .cloud_mut()
        .submit_request(spotlake_types::SpotRequestConfig {
            instance_type: ty,
            az,
            bid: spotlake_types::SpotPrice::from_micros(od.micros()).expect("positive"),
            count: 1,
            persistent: false,
        })
        .expect("pool exists");
    lake.run_rounds(6)
        .expect("collection continues during requests");
    let request = lake.cloud().request(id).expect("request registered");
    assert!(
        request.was_fulfilled(),
        "a healthy m5 pool fulfills within hours"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut lake = small_lake();
        lake.run_rounds(24).expect("collection runs");
        let r = lake
            .http_get("/latest?table=sps&instance_type=g4dn.xlarge")
            .expect("parseable request");
        r.body_text()
    };
    assert_eq!(run(), run(), "two identically seeded pipelines agree");
}
