//! Chaos suite: deterministic fault injection against the full pipeline.
//!
//! Every test drives the real `SpotLake` assembly — simulator, API layer,
//! collectors, store — with a seeded [`FaultPlan`], so the "weather" is
//! exactly reproducible: a failing case replays bit-for-bit from its seed.

mod common;

use common::SEED;
use spotlake::{CollectorConfig, SpotLake};
use spotlake_collector::{Dataset, DatasetStatus, FaultPlan, ADVISOR_TABLE, SPS_TABLE};
use spotlake_timestream::Query;

fn lake(faults: Option<FaultPlan>) -> SpotLake {
    SpotLake::builder()
        .catalog(common::test_catalog(common::GPU_MENU))
        .sim_config(common::sim_config())
        .collector_config(CollectorConfig {
            faults,
            ..CollectorConfig::default()
        })
        .build()
        .expect("pipeline builds")
}

fn table_count(lake: &SpotLake, table: &str, measure: &str) -> usize {
    lake.archive()
        .query(table, &Query::measure(measure))
        .expect("table exists")
        .len()
}

fn save_bytes(lake: &SpotLake, tag: &str) -> Vec<u8> {
    let path = common::scratch_path("chaos", tag);
    lake.save_archive(&path).expect("archive saves");
    let bytes = std::fs::read(&path).expect("archive readable");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn ten_percent_faults_degrade_rounds_but_never_sink_them() {
    let mut clean = lake(None);
    let (clean_stats, clean_healths) = clean.run_rounds_with_health(60).expect("clean run");
    assert_eq!(clean_stats.retries, 0, "fault-free runs spend no retries");
    assert!(clean_healths.iter().all(|h| !h.is_degraded()));

    let mut chaotic = lake(Some(FaultPlan::uniform(SEED, 0.10)));
    let (stats, healths) = chaotic
        .run_rounds_with_health(60)
        .expect("transient faults must never surface as Err");
    assert_eq!(healths.len(), 60, "every round reports its health");
    for (i, h) in healths.iter().enumerate() {
        assert_eq!(h.tick, (i + 1) as u64, "health records are per-round");
    }
    assert!(stats.retries > 0, "a 10% fault rate must trigger retries");

    // The retry budget absorbs almost everything: the chaotic archive
    // keeps at least 95% of the fault-free run's placement scores.
    let clean_sps = table_count(&clean, SPS_TABLE, "sps");
    let chaotic_sps = table_count(&chaotic, SPS_TABLE, "sps");
    assert!(clean_sps > 0);
    assert!(
        chaotic_sps as f64 >= clean_sps as f64 * 0.95,
        "sps completeness under chaos: {chaotic_sps}/{clean_sps}"
    );
}

#[test]
fn open_advisor_breaker_spares_sps_and_price() {
    let mut lake = lake(None);
    lake.run_rounds_with_health(1).expect("warm-up round");
    let before_advisor = table_count(&lake, ADVISOR_TABLE, "if_score");

    let tick = lake.cloud().ticks();
    lake.collector_mut()
        .force_breaker_open(Dataset::Advisor, tick);
    let (stats, healths) = lake
        .run_rounds_with_health(1)
        .expect("a skipped dataset must not fail the round");

    let health = &healths[0];
    assert_eq!(health.advisor.status, DatasetStatus::Skipped);
    assert_eq!(health.dataset(Dataset::Advisor).records, 0);
    assert!(health.is_degraded());
    assert_eq!(stats.degraded_rounds, 1);
    // The other two datasets still land in the archive.
    assert!(stats.sps_records > 0, "sps written despite advisor outage");
    assert_eq!(
        health.price.status,
        DatasetStatus::Ok,
        "price collection ran despite advisor outage"
    );
    assert_eq!(
        table_count(&lake, ADVISOR_TABLE, "if_score"),
        before_advisor,
        "no advisor rows while the breaker is open"
    );
}

#[test]
fn same_seed_and_plan_replay_bit_identically() {
    let plan = FaultPlan::uniform(SEED, 0.20);
    let mut a = lake(Some(plan));
    let mut b = lake(Some(plan));
    let (stats_a, _) = a.run_rounds_with_health(30).expect("run a");
    let (stats_b, _) = b.run_rounds_with_health(30).expect("run b");
    assert_eq!(stats_a, stats_b, "counters replay exactly");
    assert_eq!(
        save_bytes(&a, "replay-a"),
        save_bytes(&b, "replay-b"),
        "archives replay bit-for-bit"
    );
}

#[test]
fn zero_fault_plan_is_behavior_preserving() {
    let mut configured = lake(Some(FaultPlan::none(SEED)));
    let mut plain = lake(None);
    let (stats_c, _) = configured
        .run_rounds_with_health(20)
        .expect("configured run");
    let (stats_p, _) = plain.run_rounds_with_health(20).expect("plain run");
    assert_eq!(stats_c, stats_p);
    assert_eq!(stats_c.retries, 0);
    assert_eq!(stats_c.degraded_rounds, 0);
    assert_eq!(
        save_bytes(&configured, "zero-a"),
        save_bytes(&plain, "zero-b"),
        "a zero-rate plan changes nothing"
    );
}

fn durable_lake(wal_dir: &std::path::Path, faults: Option<FaultPlan>) -> SpotLake {
    SpotLake::builder()
        .catalog(common::test_catalog(common::GPU_MENU))
        .sim_config(common::sim_config())
        .collector_config(CollectorConfig {
            faults,
            wal_dir: Some(wal_dir.to_owned()),
            checkpoint_every: 4,
            ..CollectorConfig::default()
        })
        .build()
        .expect("pipeline builds")
}

#[test]
fn dead_letter_queue_survives_a_restart() {
    let wal = common::scratch_path("chaos", "dlq");

    // Heavy API weather until queries actually sit in the queue.
    let mut lake = durable_lake(&wal, Some(FaultPlan::uniform(SEED, 0.45)));
    let mut depth = 0;
    for _ in 0..60 {
        lake.run_rounds(1)
            .expect("heavy transient faults never sink a round");
        depth = lake.collector().dead_letter_depth();
        if depth > 0 {
            break;
        }
    }
    assert!(depth > 0, "heavy faults must leave dead letters queued");
    let committed = lake.archive().point_count();
    drop(lake);

    // A restart over the same directory brings back both the archive and
    // the parked queries — deferred retries survive the process.
    let restarted = durable_lake(&wal, None);
    assert_eq!(
        restarted.collector().dead_letter_depth(),
        depth,
        "dead-letter depth survives the restart"
    );
    assert_eq!(
        restarted.archive().point_count(),
        committed,
        "every committed point survives the restart"
    );
    std::fs::remove_dir_all(&wal).ok();
}

#[test]
fn heavy_faults_exercise_the_dead_letter_queue() {
    // At 45% per attempt a query exhausts its three tries ~9% of the time,
    // so across 40 rounds the dead-letter queue sees real traffic.
    let mut lake = lake(Some(FaultPlan::uniform(SEED, 0.45)));
    let (stats, healths) = lake
        .run_rounds_with_health(40)
        .expect("even heavy transient faults never surface as Err");
    assert!(
        stats.dead_lettered > 0,
        "heavy faults must dead-letter queries"
    );
    assert!(stats.degraded_rounds > 0);
    assert!(stats.queries_failed > 0);
    assert!(
        healths.iter().any(|h| h.dead_letter_depth > 0),
        "queue depth is reported while entries wait for their backoff"
    );
    // The queue drains: retries (and recovering weather) clear entries.
    assert!(table_count(&lake, SPS_TABLE, "sps") > 0);
}
