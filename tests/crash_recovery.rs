//! Crash-recovery property suite: the durable collector under seeded
//! disk-fault injection.
//!
//! The property: a crash — torn frame, flipped bit, whatever the fault
//! plan rolls — loses nothing that was committed and invents nothing
//! that was not. Every test drives the real collector against the real
//! WAL on a real temp directory, crashes it deterministically, restarts
//! it, and checks the recovered archive is *exactly* the committed
//! prefix.

mod common;

use common::SEED;
use spotlake_cloud_sim::SimCloud;
use spotlake_collector::{CollectorConfig, CollectorService, IoFaultPlan};
use spotlake_timestream::fsck;
use std::path::{Path, PathBuf};

/// More than enough rounds for the crash profile (~3% per append, three
/// appends per round) to fire.
const MAX_ROUNDS: u64 = 400;

fn cloud() -> SimCloud {
    SimCloud::new(
        common::test_catalog(common::SMALL_MENU),
        common::sim_config(),
    )
}

fn config(dir: &Path, io_faults: Option<IoFaultPlan>) -> CollectorConfig {
    CollectorConfig {
        wal_dir: Some(dir.to_owned()),
        checkpoint_every: 3,
        io_faults,
        ..CollectorConfig::default()
    }
}

fn tempdir(name: &str) -> PathBuf {
    common::scratch_path("crash", name)
}

/// What a crashed run leaves behind: the cloud (still ticking), the
/// committed point count at the instant of death, and how many full
/// rounds landed before it.
struct Crash {
    cloud: SimCloud,
    committed: usize,
    rounds_survived: u64,
}

/// Collects under the seeded crash profile until a disk fault kills the
/// WAL. The in-memory database at that instant holds exactly the
/// committed prefix — the torn frame was never applied.
fn run_until_crash(dir: &Path) -> Crash {
    let mut cloud = cloud();
    let mut service =
        CollectorService::new(cloud.catalog(), config(dir, Some(IoFaultPlan::crash(SEED))))
            .expect("durable service builds");
    for round in 0..MAX_ROUNDS {
        cloud.step();
        if service.collect_once(&cloud).is_err() {
            assert!(
                service.wal_stats().expect("durable service").dead,
                "the only non-retryable collect error under io faults is a dead WAL"
            );
            return Crash {
                committed: service.database().point_count(),
                rounds_survived: round,
                cloud,
            };
        }
    }
    panic!("crash profile never fired in {MAX_ROUNDS} rounds");
}

#[test]
fn recovery_restores_exactly_the_committed_prefix() {
    let dir = tempdir("prefix");
    let crash = run_until_crash(&dir);
    assert!(
        crash.committed > 0,
        "some rounds committed before the crash"
    );

    // The directory is visibly damaged before repair...
    let damaged = fsck(&dir).expect("fsck reads a damaged directory");
    assert!(!damaged.clean(), "{}", damaged.render());

    // ...and a restart recovers every committed point, no more, no less.
    let restarted =
        CollectorService::new(crash.cloud.catalog(), config(&dir, None)).expect("restart recovers");
    let report = restarted.recovery_report().expect("durable service");
    assert!(report.recovered_anything());
    assert_eq!(report.point_count, crash.committed);
    assert_eq!(restarted.database().point_count(), crash.committed);

    // Recovery compacted the log: the directory is clean again.
    let repaired = fsck(&dir).expect("fsck after recovery");
    assert!(repaired.clean(), "{}", repaired.render());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collection_resumes_after_recovery_and_the_outage_is_visible() {
    let dir = tempdir("resume");
    let crash = run_until_crash(&dir);
    let mut cloud = crash.cloud;

    // Downtime: the cloud keeps moving while the collector is dead.
    for _ in 0..3 {
        cloud.step();
    }
    let mut restarted =
        CollectorService::new(cloud.catalog(), config(&dir, None)).expect("restart recovers");
    cloud.step();
    restarted
        .collect_once(&cloud)
        .expect("collection resumes after recovery");
    assert!(
        restarted.database().point_count() > crash.committed,
        "new rounds land on top of the recovered prefix"
    );

    // The quality monitor was primed at the crash tick, so the outage
    // shows up as coverage gaps instead of a blank slate.
    let report = restarted.quality_report();
    let sps = report
        .datasets
        .iter()
        .find(|d| d.dataset == "sps")
        .expect("sps dataset tracked");
    assert!(sps.gaps > 0, "the crash outage is visible as gaps");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn same_seed_crashes_and_recoveries_are_byte_identical() {
    let dir_a = tempdir("replay-a");
    let dir_b = tempdir("replay-b");
    let a = run_until_crash(&dir_a);
    let b = run_until_crash(&dir_b);
    assert_eq!(
        a.rounds_survived, b.rounds_survived,
        "crashes replay exactly"
    );
    assert_eq!(a.committed, b.committed);

    let restarted_a =
        CollectorService::new(a.cloud.catalog(), config(&dir_a, None)).expect("restart a");
    let restarted_b =
        CollectorService::new(b.cloud.catalog(), config(&dir_b, None)).expect("restart b");
    assert_eq!(
        restarted_a.recovery_report().expect("report a").render(),
        restarted_b.recovery_report().expect("report b").render(),
        "recovery reports replay byte-for-byte"
    );

    let save = |svc: &CollectorService, tag: &str| {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "spotlake-crash-replay-{tag}-{}.db",
            std::process::id()
        ));
        svc.database().save(&path).expect("archive saves");
        let bytes = std::fs::read(&path).expect("archive readable");
        std::fs::remove_file(&path).ok();
        bytes
    };
    assert_eq!(
        save(&restarted_a, "a"),
        save(&restarted_b, "b"),
        "recovered archives are byte-identical"
    );
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
