//! Helpers shared by the integration suites (`mod common;` from each
//! test file). Each suite exercises the same two-region simulated cloud
//! under the same seed, so the fixtures live here once.

#![allow(dead_code)] // each suite uses a different subset

use spotlake_cloud_sim::SimConfig;
use spotlake_types::{Catalog, CatalogBuilder, SimDuration};
use std::path::PathBuf;

/// The workspace-wide replay seed (the paper's archive launch month).
pub const SEED: u64 = 20_220_901;

/// The instance menu for suites that only need two price points.
pub const SMALL_MENU: &[(&str, f64)] = &[("m5.large", 0.096), ("c5.xlarge", 0.17)];

/// [`SMALL_MENU`] plus a GPU type, for suites asserting price spread.
pub const GPU_MENU: &[(&str, f64)] = &[
    ("m5.large", 0.096),
    ("c5.xlarge", 0.17),
    ("p3.2xlarge", 3.06),
];

/// The two-region, three-AZ test catalog with the given instance menu
/// (`(type name, on-demand price)` pairs).
pub fn test_catalog(menu: &[(&str, f64)]) -> Catalog {
    let mut b = CatalogBuilder::new();
    b.region("us-test-1", 3).region("eu-test-1", 3);
    for (name, price) in menu {
        b.instance_type(name, *price);
    }
    b.build().expect("valid catalog")
}

/// The shared simulator config: fixed seed, 30-minute tick (the paper's
/// SPS collection cadence).
pub fn sim_config() -> SimConfig {
    let mut sim = SimConfig::with_seed(SEED);
    sim.tick = SimDuration::from_mins(30);
    sim
}

/// A process-unique scratch path under the system temp dir, with any
/// stale leftover from a previous run removed first. Works for both
/// file and directory use; callers clean up on success.
pub fn scratch_path(suite: &str, tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spotlake-{suite}-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_file(&p).ok();
    p
}
